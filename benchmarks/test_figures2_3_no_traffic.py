"""Figures 2 and 3 — Simulations A & B: churn 0/1, without data traffic.

Paper observations reproduced here:

* after the setup phase the connectivity is roughly ``k`` for the larger
  bucket sizes, while small ``k`` (5, and 10 in the large network) starts at
  or near zero because a handful of nodes are not (sufficiently) present in
  other nodes' routing tables;
* during the 0/1 churn phase the minimum connectivity first *rises* —
  leaving nodes free up k-bucket entries and let the network reconfigure —
  and finally collapses as the network shrinks away.
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario


@pytest.mark.parametrize(
    "figure, scenario_name, size_class",
    [("figure2", "A", "small"), ("figure3", "B", "large")],
)
def test_figures_2_3_no_traffic(figure, scenario_name, size_class,
                                benchmark, scenario_cache, output_dir):
    base = get_scenario(scenario_name)
    assert base.size_class == size_class
    results = {
        k: scenario_cache.run(base.with_overrides(bucket_size=k))
        for k in PAPER_BUCKET_SIZES
    }

    content = format_figure(
        results,
        f"{figure.capitalize()} (reproduced): Simulation {scenario_name}, "
        f"{size_class} network, churn 0/1, without data traffic",
    )
    write_artefact(output_dir, f"{figure}_simulation_{scenario_name}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    # Larger buckets stabilise at higher connectivity, roughly ordered by k.
    stabilized = {k: results[k].stabilized_minimum() for k in PAPER_BUCKET_SIZES}
    assert stabilized[30] >= stabilized[10]
    assert stabilized[20] >= stabilized[5]
    if size_class == "small":
        # Figure 2: k = 20 and 30 are clearly connected after stabilisation.
        assert stabilized[20] >= 10
        assert stabilized[30] >= 10
    # The network shrinks away during 0/1 churn.
    for k in PAPER_BUCKET_SIZES:
        sizes = results[k].series.network_size_series()
        assert sizes[-1] < max(sizes)
    # During churn the minimum connectivity holds at (or rises above) its
    # post-stabilisation level at some point before the network dies — the
    # paper's "reconfiguration" effect.  The no-traffic runs stabilise with
    # little headroom left, so the large network carries a 10 % tolerance at
    # bench scale (see EXPERIMENTS.md) while the small network reproduces
    # the rise strictly; at the even smaller smoke scale the tolerance
    # applies to both sizes.
    churn_start = results[20].phases.stabilization_end
    churn_series = results[20].series.window(churn_start).minimum_series()
    strict = size_class == "small" and scenario_cache.profile.name == "bench"
    assert max(churn_series) >= stabilized[20] * (1.0 if strict else 0.9)

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[20])
