"""Figures 8 and 9 — Simulations G & H: churn 10/10, with data traffic.

Paper observations reproduced here: compared to 1/1 churn the stronger
churn lowers the minimum-connectivity level for every bucket size and
increases its variability relative to the mean (the RV comparison of
Table 2 picks the same effect up numerically).
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario


@pytest.mark.parametrize(
    "figure, scenario_name, sibling_1_1",
    [("figure8", "G", "E"), ("figure9", "H", "F")],
)
def test_figures_8_9_churn_10_10(figure, scenario_name, sibling_1_1,
                                 benchmark, scenario_cache, output_dir):
    base = get_scenario(scenario_name)
    results = {
        k: scenario_cache.run(base.with_overrides(bucket_size=k))
        for k in PAPER_BUCKET_SIZES
    }

    content = format_figure(
        results,
        f"{figure.capitalize()} (reproduced): Simulation {scenario_name}, "
        f"{base.size_class} network, churn 10/10, with data traffic",
    )
    write_artefact(output_dir, f"{figure}_simulation_{scenario_name}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    means = {k: results[k].churn_mean_minimum() for k in PAPER_BUCKET_SIZES}
    assert means[30] >= means[10] >= means[5]
    # Network size stays constant under 10/10 churn.
    sizes = results[20].series.network_size_series()
    assert sizes[-1] == max(sizes)

    # Stronger churn does not improve the minimum connectivity compared to
    # the 1/1 sibling for the default bucket size (paper: level drops),
    # allowing a small tolerance for run-to-run noise at bench scale.
    sibling = scenario_cache.run(
        get_scenario(sibling_1_1).with_overrides(bucket_size=20)
    )
    assert means[20] <= sibling.churn_mean_minimum() * 1.15

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[20])
