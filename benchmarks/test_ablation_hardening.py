"""Ablation — connectivity hardening mechanisms (paper future work).

The paper's conclusion asks for mechanisms that deliver the connectivity
gains observed under message loss without the loss itself, and for a
connectivity control knob independent of the bucket size ``k``.  This
ablation compares plain Kademlia against the two mechanisms implemented in
``repro.extensions`` on the same churn scenario:

* contact rotation (``rotation_fraction`` > 0), and
* supplemental links (``extra_links`` > 0).

Runs use the ``tiny`` profile (the point is the relative ordering, not the
absolute values) with a deliberately small ``k`` so the headroom above
``k`` is visible.
"""

from benchmarks.conftest import write_artefact
from repro.extensions.hardening import HardeningConfig
from repro.extensions.evaluation import hardening_study, hardening_summary
from repro.experiments.scenarios import get_scenario

CONFIGS = {
    "baseline": HardeningConfig(),
    "rotation": HardeningConfig(rotation_fraction=0.5, rotation_interval_minutes=4.0),
    "extra-links": HardeningConfig(supplemental_links=8,
                                   supplemental_interval_minutes=4.0),
    "combined": HardeningConfig(rotation_fraction=0.25, supplemental_links=8,
                                rotation_interval_minutes=4.0,
                                supplemental_interval_minutes=4.0),
}


def test_ablation_connectivity_hardening(benchmark, output_dir):
    scenario = get_scenario("F").with_overrides(bucket_size=5)
    results = hardening_study(scenario, CONFIGS, profile="tiny", seed=7)
    rows = hardening_summary(results)

    header = f"{'configuration':<14} {'stab. min':>9} {'churn mean min':>15} {'churn mean avg':>15}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['configuration']:<14} {row['stabilized_min']:>9} "
            f"{row['churn_mean_min']:>15.2f} {row['churn_mean_avg']:>15.2f}"
        )
    write_artefact(output_dir, "ablation_hardening.txt", "\n".join(lines))

    by_name = {row["configuration"]: row for row in rows}
    # The supplemental-links mechanism lifts the minimum connectivity above
    # the plain-Kademlia baseline (its whole purpose).
    assert (
        by_name["extra-links"]["churn_mean_min"]
        >= by_name["baseline"]["churn_mean_min"]
    )
    # Rotation must not collapse connectivity below the baseline by more
    # than noise; it trades steady membership for reorganisation headroom.
    assert (
        by_name["rotation"]["churn_mean_min"]
        >= by_name["baseline"]["churn_mean_min"] * 0.7
    )
    # No mechanism loses nodes.
    assert all(row["final_network_size"] > 0 for row in rows)

    # Benchmark the cheapest representative piece: one baseline tiny run.
    benchmark.pedantic(
        lambda: hardening_study(
            scenario, {"baseline": CONFIGS["baseline"]}, profile="tiny", seed=7
        ),
        rounds=1,
        iterations=1,
    )
