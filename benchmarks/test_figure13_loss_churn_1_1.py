"""Figure 13 — Simulation K: message loss with churn 1/1, s ∈ {1, 5}.

Paper observations reproduced: churn visibly reduces the connectivity gain
from message loss compared to Simulation J (same loss levels, no churn); the
s=5 damping keeps the connectivity near k.
"""

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import get_scenario

LOSS_LEVELS = ("low", "medium", "high")


def test_figure13_loss_with_churn_1_1(benchmark, scenario_cache, output_dir):
    base = get_scenario("K")
    results = {}
    for loss in LOSS_LEVELS:
        for s in (1, 5):
            scenario = base.with_overrides(loss=loss, staleness_limit=s)
            results[(loss, s)] = scenario_cache.run(scenario)

    for s in (1, 5):
        panel = {loss: results[(loss, s)] for loss in LOSS_LEVELS}
        content = format_figure(
            panel,
            f"Figure 13{'a' if s == 1 else 'b'} (reproduced): Simulation K, large "
            f"network, message loss, churn 1/1, k=20, s={s}",
        )
        write_artefact(output_dir, f"figure13_loss_churn_1_1_s{s}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    # Churn reduces the positive effect of loss: for the same loss level and
    # s=1, the average connectivity during the observation window is no
    # higher than in the churn-free Simulation J.
    j_base = get_scenario("J")
    for loss in LOSS_LEVELS:
        with_churn = results[(loss, 1)].churn_mean_average()
        without_churn = scenario_cache.run(
            j_base.with_overrides(loss=loss, staleness_limit=1)
        ).churn_mean_average()
        assert with_churn <= without_churn * 1.1, loss

    # The 1/1 churn keeps the network size constant.
    sizes = results[("medium", 1)].series.network_size_series()
    assert sizes[-1] == max(sizes)

    # s=5 damps the loss effect also under churn: the paper's claim is that
    # the greater staleness limit "limits the minimum connectivity to about k
    # for all loss scenarios" (Section 5.8.2).  The average connectivity is
    # not a reliable discriminator here because the s=1 runs include the
    # transiently unconnected newcomers that also drag their average down.
    for loss in LOSS_LEVELS:
        damped = results[(loss, 5)]
        churn_min = damped.series.window(
            damped.phases.stabilization_end
        ).minimum_series()
        assert max(churn_min) <= damped.scenario.bucket_size * 1.6, loss

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[("medium", 1)])
