#!/usr/bin/env python3
"""Quickstart: simulate a Kademlia network and measure its connection resilience.

This walks through the paper's whole pipeline in one short script:

1. build a Kademlia network with the event-driven simulator,
2. snapshot the routing tables,
3. turn the snapshot into a connectivity graph (Section 4.2),
4. compute the minimum/average vertex connectivity via Even's
   transformation and max flow (Sections 4.3-4.4),
5. translate the connectivity into a resilience statement (Section 4.5).

Run with:  python examples/quickstart.py
"""

from repro.churn.churn_model import get_churn_scenario
from repro.churn.loss import get_loss_model
from repro.churn.traffic import TrafficModel
from repro.core.analyzer import ConnectivityAnalyzer
from repro.core.resilience import ResilienceModel
from repro.experiments.simulation import KademliaSimulation
from repro.graph.algorithms.paths import vertex_disjoint_paths
from repro.kademlia.config import KademliaConfig
from repro.simulator.random_source import RandomSource


def main() -> None:
    # 1. Configure a small Kademlia network: k=8 contacts per bucket,
    #    lookups with parallelism 3, contacts dropped after 1 failed RPC.
    config = KademliaConfig(bucket_size=8, alpha=3, staleness_limit=1,
                            refresh_interval_minutes=15.0)
    simulation = KademliaSimulation(
        config=config,
        loss=get_loss_model("none"),
        traffic=TrafficModel(enabled=True, lookups_per_node_per_minute=4,
                             disseminations_per_node_per_minute=0.5),
        churn=get_churn_scenario("none"),
        random_source=RandomSource(seed=2024),
    )

    # 2. 30 nodes join during the first 10 simulated minutes, then the
    #    network runs with data traffic until minute 40.
    simulation.schedule_setup(node_count=30, setup_duration=10.0)
    simulation.schedule_traffic(start=1.0, end=40.0)
    simulation.run_until(40.0)
    snapshot = simulation.take_snapshot()
    print(f"network size:            {snapshot.network_size}")
    print(f"routing table entries:   {snapshot.total_contacts()}")

    # 3 + 4. Connectivity graph and vertex connectivity.
    analyzer = ConnectivityAnalyzer(source_fraction=None)  # exact, small graph
    report = analyzer.analyze_snapshot(snapshot.routing_tables)
    print(f"minimum connectivity:    {report.minimum}")
    print(f"average connectivity:    {report.average:.1f}")
    print(f"graph almost undirected: symmetry ratio {report.symmetry_ratio:.2f}")

    # 5. Resilience (Equation 2: kappa(D) > r >= a).
    print(f"resilience r:            {report.resilience} "
          f"(tolerates {report.resilience} compromised nodes)")
    attacker = ResilienceModel(attacker_budget=3)
    verdict = "tolerates" if attacker.is_satisfied_by(report.minimum) else "does NOT tolerate"
    print(f"attacker with budget 3:  network {verdict} the attack")

    # Bonus: show concrete node-disjoint paths between two nodes.
    graph = snapshot.to_connectivity_graph()
    nodes = graph.vertices()
    source, target = nodes[0], nodes[-1]
    if not graph.has_edge(source, target):
        paths = vertex_disjoint_paths(graph, source, target)
        print(f"node-disjoint paths between {source:#x} and {target:#x}: {len(paths)}")


if __name__ == "__main__":
    main()
