#!/usr/bin/env python3
"""Quickstart: simulate a Kademlia network and measure its connection resilience.

This walks through the paper's whole pipeline in one short script:

1. build a Kademlia network with the event-driven simulator,
2. snapshot the routing tables,
3. turn the snapshot into a connectivity graph (Section 4.2),
4. compute the minimum/average vertex connectivity via Even's
   transformation and max flow (Sections 4.3-4.4),
5. translate the connectivity into a resilience statement (Section 4.5).

Run with:  python examples/quickstart.py
"""

from repro.api import (
    KademliaConfig,
    KademliaSimulation,
    RandomSource,
    ResilienceModel,
    TrafficModel,
    analyze_snapshot,
    estimate_connectivity,
    get_churn_scenario,
    get_loss_model,
    vertex_disjoint_paths,
)


def main() -> None:
    # 1. Configure a small Kademlia network: k=8 contacts per bucket,
    #    lookups with parallelism 3, contacts dropped after 1 failed RPC.
    config = KademliaConfig(bucket_size=8, alpha=3, staleness_limit=1,
                            refresh_interval_minutes=15.0)
    simulation = KademliaSimulation(
        config=config,
        loss=get_loss_model("none"),
        traffic=TrafficModel(enabled=True, lookups_per_node_per_minute=4,
                             disseminations_per_node_per_minute=0.5),
        churn=get_churn_scenario("none"),
        random_source=RandomSource(seed=2024),
    )

    # 2. 30 nodes join during the first 10 simulated minutes, then the
    #    network runs with data traffic until minute 40.
    simulation.schedule_setup(node_count=30, setup_duration=10.0)
    simulation.schedule_traffic(start=1.0, end=40.0)
    simulation.run_until(40.0)
    snapshot = simulation.take_snapshot()
    print(f"network size:            {snapshot.network_size}")
    print(f"routing table entries:   {snapshot.total_contacts()}")

    # 3 + 4. Connectivity graph and vertex connectivity (exact mode: the
    #    graph is small enough for all pairs).
    report = analyze_snapshot(snapshot)
    print(f"minimum connectivity:    {report.min_connectivity}")
    print(f"average connectivity:    {report.avg_connectivity:.1f}")
    print(f"graph almost undirected: symmetry ratio {report.symmetry_ratio:.2f}")

    # At deployment scale (10^4+ nodes) exact mode is infeasible; the
    # estimator reports the same quantities from a sampled pair budget,
    # with a confidence interval for the average.
    estimate = estimate_connectivity(snapshot, sample_pairs=64, seed=1)
    low, high = estimate.confidence_interval
    print(f"estimated average:       {estimate.avg_connectivity:.1f} "
          f"(95% CI [{low:.1f}, {high:.1f}], "
          f"{estimate.pairs_sampled} pairs sampled)")

    # 5. Resilience (Equation 2: kappa(D) > r >= a).
    print(f"resilience r:            {report.resilience} "
          f"(tolerates {report.resilience} compromised nodes)")
    attacker = ResilienceModel(attacker_budget=3)
    verdict = (
        "tolerates"
        if attacker.is_satisfied_by(report.min_connectivity)
        else "does NOT tolerate"
    )
    print(f"attacker with budget 3:  network {verdict} the attack")

    # Bonus: show concrete node-disjoint paths between two nodes.
    graph = snapshot.to_connectivity_graph()
    nodes = graph.vertices()
    source, target = nodes[0], nodes[-1]
    if not graph.has_edge(source, target):
        paths = vertex_disjoint_paths(graph, source, target)
        print(f"node-disjoint paths between {source:#x} and {target:#x}: {len(paths)}")


if __name__ == "__main__":
    main()
