#!/usr/bin/env python3
"""Resilience planning: choose Kademlia parameters for a target attacker budget.

Given "the attacker can compromise up to ``a`` nodes at any time" (the paper's
system model, Section 3), this example answers the operator's question:
*which bucket size k do I need, and what do I gain from more?*

It combines the analytical side (Equation 2 and the k > r rule from the
conclusion) with measurement: a bucket-size sweep of the churn scenario the
operator expects, reporting whether each k actually delivered the required
connectivity throughout the churn phase.

Run with:  python examples/resilience_planning.py --attacker-budget 4
"""

import argparse

from repro.api import (
    ResilienceModel,
    format_table,
    get_scenario,
    run_bucket_size_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--attacker-budget", type=int, default=4,
                        help="number of simultaneously compromised nodes to tolerate")
    parser.add_argument("--churn", default="1/1", choices=["0/1", "1/1", "10/10"],
                        help="expected churn intensity")
    parser.add_argument("--quick", action="store_true",
                        help="use the tiny test profile instead of the bench profile")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    model = ResilienceModel(attacker_budget=args.attacker_budget)
    print(f"attacker budget a:          {model.attacker_budget}")
    print(f"required connectivity:      kappa(D) > {model.attacker_budget} "
          f"(i.e. at least {model.required_connectivity})")
    print(f"rule-of-thumb bucket size:  k >= {model.recommended_bucket_size} "
          "(paper conclusion: k > r, and k >= 10 for a connected network)")
    print()

    profile = "tiny" if args.quick else "bench"
    bucket_sizes = (3, 5, 8) if args.quick else (5, 10, 20, 30)
    base = get_scenario("E" if args.churn != "10/10" else "G")
    base = base.with_overrides(churn=args.churn) if base.churn != args.churn else base

    results = run_bucket_size_sweep(base, bucket_sizes=bucket_sizes,
                                    profile=profile, seed=args.seed)

    rows = []
    for k, result in sorted(results.items()):
        worst = min(result.series.window(*result.phases.churn_window()).minimum_series()
                    or [0])
        mean_min = result.churn_mean_minimum()
        rows.append([
            k,
            round(mean_min, 1),
            worst,
            "yes" if model.is_satisfied_by(worst) else "no",
            "yes" if model.is_satisfied_by(int(mean_min)) else "no",
        ])

    print(f"Measured connectivity during churn {args.churn} "
          f"({'tiny' if args.quick else 'bench'} profile):")
    print(format_table(
        ["k", "Mean min kappa", "Worst min kappa",
         "Tolerates a (worst case)", "Tolerates a (on average)"],
        rows,
    ))
    print()
    print("Pick the smallest k whose worst-case column says 'yes'; the paper")
    print("warns that under strong churn the resilience level cannot be")
    print("guaranteed even with large k (Section 6).")


if __name__ == "__main__":
    main()
