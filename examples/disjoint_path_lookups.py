#!/usr/bin/env python3
"""Disjoint-path lookups against an eclipse adversary (extension).

The paper measures how many node-disjoint paths a Kademlia network offers
(its vertex connectivity); S/Kademlia — the paper's reference [1] — shows
how to *spend* those paths: run every lookup over ``d`` node-disjoint
paths, so an adversary has to control a node on every path to eclipse the
lookup.

This example builds a 300-node network, hands 25 % of the nodes to an
eclipse adversary (they answer every lookup with other compromised nodes
only), and measures how lookup success grows with the number of disjoint
paths.

Run with:  python examples/disjoint_path_lookups.py
"""

from repro.api import disjoint_path_study


def main() -> None:
    compromised_fraction = 0.25
    rows = disjoint_path_study(
        node_count=300,
        compromised_fraction=compromised_fraction,
        path_counts=(1, 2, 3, 4),
        lookups=40,
        seed=17,
    )

    print(f"Eclipse adversary controls {compromised_fraction:.0%} of 300 nodes")
    print()
    header = (
        f"{'paths d':>7} {'owner hit rate':>15} {'replica hit rate':>17} "
        f"{'mean round-trips':>17}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.path_count:>7} {row.owner_hit_rate:>15.2f} "
            f"{row.replica_hit_rate:>17.2f} {row.mean_queried:>17.1f}"
        )
    print()
    single = rows[0]
    best = max(rows, key=lambda row: row.replica_hit_rate)
    print(
        f"Going from 1 to {best.path_count} disjoint paths lifts the replica hit "
        f"rate from {single.replica_hit_rate:.0%} to {best.replica_hit_rate:.0%} "
        f"at {best.mean_queried / max(single.mean_queried, 1):.1f}x the traffic."
    )


if __name__ == "__main__":
    main()
