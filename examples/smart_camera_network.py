#!/usr/bin/env python3
"""Smart camera network (SCN) scenario.

The paper's introduction motivates the study with distributed cyber-physical
systems; the small network size (250 nodes in the paper) models a smart
camera network surveilling an industrial complex.  Cameras fail, get
serviced, or are attacked — the operator needs to know how many simultaneous
camera compromises the overlay tolerates while it keeps exchanging tracking
information.

This example runs the paper's Simulation E/G setup (small network, data
traffic, churn) at laptop scale for two churn intensities and reports the
connectivity and the tolerated attacker budget per bucket size, reproducing
the shape of Figure 10a.

Run with:  python examples/smart_camera_network.py            (bench scale)
           python examples/smart_camera_network.py --quick    (tiny scale)
"""

import argparse

from repro.api import format_table, get_scenario, resilience_of, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the tiny test profile instead of the bench profile")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    profile = "tiny" if args.quick else "bench"
    bucket_sizes = (5, 10, 20) if not args.quick else (3, 5, 8)

    rows = []
    for churn_scenario in ("E", "G"):  # churn 1/1 and 10/10, small network
        base = get_scenario(churn_scenario)
        for k in bucket_sizes:
            result = run_scenario(
                base.with_overrides(bucket_size=k),
                profile=profile, seed=args.seed,
            )
            mean_min = result.churn_mean_minimum()
            rows.append([
                base.churn,
                k,
                result.stabilized_minimum(),
                round(mean_min, 1),
                resilience_of(int(mean_min)),
                round(result.churn_relative_variance_minimum(), 2),
            ])

    print("Smart camera network: connectivity under camera churn")
    print(format_table(
        ["Churn", "k", "Min after stabilisation", "Mean min (churn)",
         "Tolerated compromises", "RV"],
        rows,
    ))
    print()
    print("Reading the table: pick the smallest k whose 'Tolerated compromises'")
    print("column exceeds the number of cameras an attacker could take over;")
    print("the paper's conclusion is k > r and k >= 10 for a connected network.")


if __name__ == "__main__":
    main()
