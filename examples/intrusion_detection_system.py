#!/usr/bin/env python3
"""Distributed intrusion detection system (IDS) scenario.

The paper's second motivating system is an IDS spanning several corporate
branches — a larger overlay (2500 nodes in the paper) whose nodes sit behind
flaky WAN links.  Message loss is therefore a first-class concern: the paper
finds the counter-intuitive result that *loss increases connectivity* when
stale contacts are dropped quickly (s=1), while a conservative staleness
limit (s=5) damps the effect (Figures 12-14).

This example reproduces that comparison at laptop scale: the large scenario
with data traffic, no churn (Simulation J), across the paper's loss levels
and both staleness limits.

Run with:  python examples/intrusion_detection_system.py           (bench scale)
           python examples/intrusion_detection_system.py --quick   (tiny scale)
"""

import argparse

from repro.api import format_table, get_scenario, run_loss_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="use the tiny test profile instead of the bench profile")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    profile = "tiny" if args.quick else "bench"
    bucket_size = 5 if args.quick else 20
    base = get_scenario("J").with_overrides(bucket_size=bucket_size)

    results = run_loss_sweep(
        base,
        loss_levels=("low", "medium", "high"),
        staleness_values=(1, 5),
        profile=profile,
        seed=args.seed,
    )

    rows = []
    for (loss, staleness), result in sorted(results.items()):
        rows.append([
            loss,
            staleness,
            round(result.churn_mean_minimum(), 1),
            round(result.churn_mean_average(), 1),
            result.final_network_size(),
        ])

    print("Distributed IDS: connectivity under WAN message loss (no churn)")
    print(format_table(
        ["Loss", "s", "Mean min connectivity", "Mean avg connectivity", "Nodes"],
        rows,
    ))
    print()
    print("Expected shape (paper Figure 12): with s=1, higher loss gives *higher*")
    print("connectivity because failed round-trips evict stale/redundant contacts")
    print("and make room for new ones; with s=5 the effect is strongly damped.")


if __name__ == "__main__":
    main()
