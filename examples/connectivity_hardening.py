#!/usr/bin/env python3
"""Connectivity hardening without message loss (extension).

The paper's surprising result is that *message loss* increases Kademlia's
connectivity (Figure 12): failed round-trips evict contacts, and the freed
bucket slots let nodes that were shut out of the full buckets back in.  Its
conclusion asks for mechanisms that achieve the same effect without
dropping messages.

This example compares three configurations of the same churned network
(the paper's Simulation F shape, small bucket size so the effect is easy to
see):

* ``baseline``     — plain Kademlia;
* ``rotation``     — full buckets periodically rotate out their oldest
                     contact and immediately re-learn the range;
* ``extra-links``  — nodes keep up to 8 contacts that the bucket policy
                     rejected (a connectivity knob independent of ``k``).

Run with:  python examples/connectivity_hardening.py
"""

from repro.api import (
    HardeningConfig,
    get_scenario,
    hardening_study,
    hardening_summary,
)


def main() -> None:
    scenario = get_scenario("F").with_overrides(bucket_size=5)
    configs = {
        "baseline": HardeningConfig(),
        "rotation": HardeningConfig(rotation_fraction=0.5,
                                    rotation_interval_minutes=4.0),
        "extra-links": HardeningConfig(supplemental_links=8,
                                       supplemental_interval_minutes=4.0),
    }

    print(f"Scenario: {scenario.label()}")
    print("Profile: tiny (relative ordering is what matters)")
    print()
    results = hardening_study(scenario, configs, profile="tiny", seed=7)

    header = (
        f"{'configuration':<14} {'stabilised min':>14} {'churn mean min':>15} "
        f"{'churn mean avg':>15}"
    )
    print(header)
    print("-" * len(header))
    for row in hardening_summary(results):
        print(
            f"{row['configuration']:<14} {row['stabilized_min']:>14} "
            f"{row['churn_mean_min']:>15.2f} {row['churn_mean_avg']:>15.2f}"
        )

    print()
    baseline = results["baseline"].churn_mean_minimum()
    extra = results["extra-links"].churn_mean_minimum()
    print(
        "Supplemental links raise the minimum connectivity during churn from "
        f"{baseline:.1f} to {extra:.1f} without dropping a single message — "
        "the loss-free reorganisation the paper's future work asks for."
    )


if __name__ == "__main__":
    main()
