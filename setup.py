"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only exists so
`pip install -e . --no-use-pep517` (legacy editable install) works offline.
"""
from setuptools import setup

setup()
