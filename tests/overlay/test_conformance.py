"""Overlay conformance suite: one battery every implementation must pass.

The resilience pipeline relies on a small behavioural contract beyond the
method signatures of :class:`repro.overlay.base.OverlayProtocol`:

* **join/leave updates routing state** — a join populates the joiner's
  snapshot and announces it to the network; a peer's death is eventually
  evicted from the tables (that is what the paper's churn resilience
  measures);
* **capture is deterministic** — identical seeds produce identical
  snapshot rows, the bedrock of the pinned trajectory digests;
* **membership_version bumps exactly on membership change** — the
  incremental graph maintainer skips rows with unchanged versions, so a
  missing bump silently corrupts connectivity results and a spurious one
  only wastes work;
* **lookups terminate** — under loss, against dead targets, and when
  isolated.

Every test is parametrized over the full registry; a new overlay
implementation is conformant exactly when this module passes for it.
"""

import random

import pytest

from repro.kademlia.node_id import generate_node_id
from repro.overlay import get_overlay, overlay_names
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport

BIT_LENGTH = 64


def build_network(
    protocol_name: str,
    size: int,
    rng: random.Random,
    *,
    loss: float = 0.0,
    bucket_size: int = 20,
    staleness_limit: int = 1,
):
    """A network of ``size`` joined nodes; returns (network, protocols)."""
    descriptor = get_overlay(protocol_name)
    config = descriptor.build_config(
        bit_length=BIT_LENGTH,
        bucket_size=bucket_size,
        alpha=3,
        staleness_limit=staleness_limit,
        bootstrap_reseed=True,
    )
    factory = descriptor.protocol_factory()
    network = Network()
    transport = Transport(
        network, loss_probability=loss, rng=rng, protocol_name=protocol_name
    )
    protocols = []
    used = set()
    for _ in range(size):
        node_id = generate_node_id(BIT_LENGTH, rng, exclude=used)
        used.add(node_id)
        protocol = factory(node_id, config)
        protocol.bind(transport, lambda: 0.0)
        node = SimNode(node_id)
        node.register_protocol(protocol_name, protocol)
        network.add_node(node)
        bootstrap = rng.choice(protocols).node_id if protocols else None
        protocol.join(bootstrap)
        protocols.append(protocol)
    return network, protocols


@pytest.mark.parametrize("protocol", overlay_names())
class TestJoinLeave:
    def test_join_populates_joiner_and_announces_it(self, protocol):
        rng = random.Random(3)
        _network, protocols = build_network(protocol, 12, rng)
        joiner = protocols[-1]
        # The joiner learned contacts beyond its bootstrap...
        snapshot = joiner.routing_table_snapshot()
        assert snapshot, "join left the joiner's routing state empty"
        assert joiner.ever_connected
        # ...and the self-lookup announced it: somebody else knows it.
        known_by = sum(
            1
            for other in protocols[:-1]
            if joiner.node_id in other.routing_table_snapshot()
        )
        assert known_by > 0, "no existing node learned the joiner"

    def test_dead_peer_is_evicted_after_failed_round_trips(self, protocol):
        rng = random.Random(5)
        network, protocols = build_network(protocol, 12, rng)
        victim = protocols[-1]
        observers = [
            p
            for p in protocols[:-1]
            if victim.node_id in p.routing_table_snapshot()
        ]
        assert observers, "victim unknown to everyone — join broken"
        network.remove_node(victim.node_id, 0.0)
        # staleness_limit=1: one failed round-trip evicts the dead peer.
        for observer in observers:
            ok, _ = observer.rpc(victim.node_id, None)
            assert not ok
            assert victim.node_id not in observer.routing_table_snapshot(), (
                f"{protocol}: dead peer survived a failed round-trip "
                "at staleness limit 1"
            )


@pytest.mark.parametrize("protocol", overlay_names())
class TestDeterministicCapture:
    def test_identical_seeds_produce_identical_snapshots(self, protocol):
        def capture(seed):
            _network, protocols = build_network(
                protocol, 15, random.Random(seed)
            )
            return {
                p.node_id: (p.routing_table_snapshot(), p.snapshot_version())
                for p in protocols
            }

        assert capture(21) == capture(21)

    def test_snapshot_rows_are_plain_contact_lists(self, protocol):
        _network, protocols = build_network(protocol, 8, random.Random(2))
        for p in protocols:
            row = p.routing_table_snapshot()
            assert isinstance(row, list)
            assert all(isinstance(contact, int) for contact in row)
            assert p.node_id not in row, "a node must not list itself"
            assert len(set(row)) == len(row), "duplicate contacts in a row"


@pytest.mark.parametrize("protocol", overlay_names())
class TestMembershipVersion:
    def _fresh_pair(self, protocol):
        """Two bound protocols on a shared network, no joins performed."""
        descriptor = get_overlay(protocol)
        config = descriptor.build_config(
            bit_length=BIT_LENGTH,
            bucket_size=20,
            alpha=3,
            staleness_limit=1,
            bootstrap_reseed=True,
        )
        factory = descriptor.protocol_factory()
        network = Network()
        transport = Transport(
            network, loss_probability=0.0, protocol_name=protocol
        )
        protocols = []
        for node_id in (0x1111, 0x9999):
            p = factory(node_id, config)
            p.bind(transport, lambda: 0.0)
            node = SimNode(node_id)
            node.register_protocol(protocol, p)
            network.add_node(node)
            protocols.append(p)
        return network, protocols

    def test_bumps_on_new_contact_not_on_refresh(self, protocol):
        _network, (a, b) = self._fresh_pair(protocol)
        before = a.snapshot_version()
        a.note_contact(b.node_id)
        after_insert = a.snapshot_version()
        assert after_insert != before, "learning a new contact must bump"
        a.note_contact(b.node_id)
        assert a.snapshot_version() == after_insert, (
            "re-noting a known contact must NOT bump (the incremental "
            "graph maintainer would rebuild unchanged rows)"
        )

    def test_bumps_on_eviction_only_for_known_contacts(self, protocol):
        network, (a, b) = self._fresh_pair(protocol)
        a.note_contact(b.node_id)
        before = a.snapshot_version()
        network.remove_node(b.node_id, 0.0)
        ok, _ = a.rpc(b.node_id, None)
        assert not ok
        assert a.snapshot_version() != before, "eviction must bump"
        assert b.node_id not in a.routing_table_snapshot()
        # A failed round-trip to a node never in the table changes nothing.
        stable = a.snapshot_version()
        ok, _ = a.rpc(0x5555, None)
        assert not ok
        assert a.snapshot_version() == stable, (
            "failure against an unknown node must NOT bump"
        )

    def test_version_tracks_snapshot_membership(self, protocol):
        rng = random.Random(13)
        network, protocols = build_network(protocol, 10, rng)
        subject = protocols[0]
        membership = set(subject.routing_table_snapshot())
        version = subject.snapshot_version()
        # Churn the network around the subject; whenever the membership
        # set changes, the version must have changed with it.
        for victim in protocols[5:]:
            network.remove_node(victim.node_id, 0.0)
            subject.rpc(victim.node_id, None)
            new_membership = set(subject.routing_table_snapshot())
            new_version = subject.snapshot_version()
            if new_membership != membership:
                assert new_version != version, (
                    f"{protocol}: snapshot changed but version did not"
                )
            membership, version = new_membership, new_version


@pytest.mark.parametrize("protocol", overlay_names())
class TestLookupTermination:
    def test_lookup_terminates_under_loss(self, protocol):
        rng = random.Random(17)
        _network, protocols = build_network(protocol, 20, rng, loss=0.3)
        for _ in range(10):
            origin = rng.choice(protocols)
            target = generate_node_id(BIT_LENGTH, rng)
            result = origin.lookup(target)
            assert result.queried >= result.failures
            assert result.rounds <= result.queried + 1

    def test_lookup_for_member_finds_it_when_loss_free(self, protocol):
        rng = random.Random(19)
        _network, protocols = build_network(protocol, 20, rng)
        origin, member = protocols[0], protocols[10]
        result = origin.lookup(member.node_id)
        assert result.succeeded
        assert member.node_id in result.contacted, (
            f"{protocol}: loss-free lookup missed an alive member"
        )

    def test_isolated_node_lookup_terminates_empty(self, protocol):
        descriptor = get_overlay(protocol)
        config = descriptor.build_config(
            bit_length=BIT_LENGTH,
            bucket_size=20,
            alpha=3,
            staleness_limit=1,
            bootstrap_reseed=True,
        )
        network = Network()
        transport = Transport(network, protocol_name=protocol)
        lonely = descriptor.protocol_factory()(0xABCD, config)
        lonely.bind(transport, lambda: 0.0)
        node = SimNode(0xABCD)
        node.register_protocol(protocol, lonely)
        network.add_node(node)
        result = lonely.lookup(0x1234)
        assert not result.succeeded
        assert result.contacted == []
