"""The protocol dimension threaded through the experiment stack.

Covers the refactor's cross-layer contracts:

* the task **fingerprint** treats the protocol as identity-bearing
  (kademlia/chord/pastry tasks have distinct cache keys) while keeping
  the Kademlia encoding legacy-stable (no ``protocol`` key — committed
  cache entries stay valid);
* result **persistence** round-trips the protocol, again omitting it on
  the Kademlia path;
* the **runner** builds the right protocol per scenario and rejects the
  Kademlia-only hardening extensions for other overlays;
* a **sweep** runs end-to-end per protocol, producing the same
  minimum/average-connectivity series shape the paper's pipeline emits
  for Kademlia (the cross-protocol resilience table of the README);
* the **CLI** accepts ``--protocol`` wherever a scenario is run.
"""

import pytest

from repro.cli import build_parser, main
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import Scenario, get_scenario
from repro.experiments.sweep import run_bucket_size_sweep
from repro.kademlia.protocol import KademliaProtocol
from repro.overlay import overlay_names
from repro.overlay.chord import ChordProtocol
from repro.overlay.pastry import PastryProtocol
from repro.runtime import ExperimentTask

PROTOCOL_CLASSES = {
    "kademlia": KademliaProtocol,
    "chord": ChordProtocol,
    "pastry": PastryProtocol,
}


def scenario_for(protocol: str) -> Scenario:
    base = get_scenario("A")
    if protocol == "kademlia":
        return base
    return base.with_overrides(protocol=protocol)


class TestScenarioProtocolDimension:
    def test_registry_scenarios_default_to_kademlia(self):
        assert get_scenario("E").protocol == "kademlia"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            get_scenario("E").with_overrides(protocol="gnutella")

    def test_label_suffix_only_for_non_kademlia(self):
        # The label feeds the connectivity series and through it the
        # pinned Kademlia digests — it must not move for kademlia.
        assert "protocol" not in get_scenario("E").label()
        chord = get_scenario("E").with_overrides(protocol="chord")
        assert chord.label().endswith("protocol=chord")


class TestFingerprintIdentity:
    def test_protocol_is_identity_bearing(self):
        keys = {
            protocol: ExperimentTask.create(
                scenario=scenario_for(protocol), profile="tiny", seed=42
            ).key()
            for protocol in overlay_names()
        }
        assert len(set(keys.values())) == len(keys), (
            f"protocol must distinguish task fingerprints, got {keys}"
        )

    def test_kademlia_fingerprint_is_legacy_stable(self):
        # Committed cache entries predate the protocol dimension; the
        # kademlia fingerprint must keep encoding without the key.
        task = ExperimentTask.create(
            scenario=get_scenario("A"), profile="tiny", seed=42
        )
        assert "protocol" not in task.fingerprint()["scenario"]

    def test_non_kademlia_fingerprint_carries_protocol(self):
        task = ExperimentTask.create(
            scenario=scenario_for("pastry"), profile="tiny", seed=42
        )
        assert task.fingerprint()["scenario"]["protocol"] == "pastry"


class TestRunnerProtocolSelection:
    @pytest.mark.parametrize("protocol", overlay_names())
    def test_build_simulation_instantiates_the_right_protocol(self, protocol):
        runner = ExperimentRunner(profile="tiny", seed=1)
        simulation = runner.build_simulation(scenario_for(protocol))
        assert simulation.protocol_name == protocol
        simulation.schedule_setup(4, setup_duration=1.0)
        simulation.run_until(1.0)
        protocols = simulation.alive_protocols()
        assert protocols
        assert all(
            isinstance(p, PROTOCOL_CLASSES[protocol]) for p in protocols
        )

    def test_hardening_is_kademlia_only(self):
        from repro.extensions.hardening import HardeningConfig

        runner = ExperimentRunner(profile="tiny", seed=1)
        hardening = HardeningConfig(supplemental_links=2)
        # Fine for kademlia...
        runner.build_simulation(get_scenario("A"), hardening=hardening)
        # ...rejected for the other overlays.
        with pytest.raises(ValueError, match="Kademlia-specific"):
            runner.build_simulation(scenario_for("chord"), hardening=hardening)


class TestPersistenceRoundTrip:
    def _run(self, protocol):
        runner = ExperimentRunner(profile="tiny", seed=7, keep_snapshots=True)
        return runner.run(scenario_for(protocol))

    def test_kademlia_document_is_legacy_stable(self):
        document = result_to_dict(self._run("kademlia"))
        assert "protocol" not in document["scenario"]
        restored = result_from_dict(document)
        assert restored.scenario.protocol == "kademlia"

    @pytest.mark.parametrize("protocol", ["chord", "pastry"])
    def test_protocol_round_trips(self, protocol):
        result = self._run(protocol)
        document = result_to_dict(result, include_snapshots=True)
        assert document["scenario"]["protocol"] == protocol
        restored = result_from_dict(document)
        assert restored.scenario.protocol == protocol


class TestCrossProtocolSweep:
    @pytest.mark.parametrize("protocol", ["chord", "pastry"])
    def test_sweep_k_runs_end_to_end(self, protocol):
        # The acceptance run: a k-sweep per overlay through the unchanged
        # churn/attack pipeline, yielding min/avg connectivity series.
        results = run_bucket_size_sweep(
            get_scenario("A").with_overrides(protocol=protocol),
            bucket_sizes=[4, 8],
            profile="tiny",
            seed=42,
        )
        assert sorted(results) == [4, 8]
        for k, result in results.items():
            assert result.scenario.protocol == protocol
            assert result.scenario.bucket_size == k
            samples = result.series.samples
            assert samples
            for sample in samples:
                assert sample.report.minimum >= 0
                assert sample.report.average >= sample.report.minimum


class TestCliProtocolOption:
    def test_protocol_parsed_on_run_and_sweep(self):
        parser = build_parser()
        assert parser.parse_args(["run", "E"]).protocol == "kademlia"
        args = parser.parse_args(["run", "E", "--protocol", "chord"])
        assert args.protocol == "chord"
        args = parser.parse_args(
            ["sweep-k", "--scenario", "A", "--protocol", "pastry"]
        )
        assert args.protocol == "pastry"
        args = parser.parse_args(["table2", "--protocol", "chord"])
        assert args.protocol == "chord"
        args = parser.parse_args(["obs", "summary", "E", "--protocol", "pastry"])
        assert args.protocol == "pastry"

    def test_unknown_protocol_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E", "--protocol", "gnutella"])
        capsys.readouterr()

    def test_run_chord_tiny_end_to_end(self, capsys):
        exit_code = main(
            ["run", "A", "--profile", "tiny", "--seed", "1",
             "--protocol", "chord"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "protocol=chord" in output
