"""Seeded-run digests pinned across the simulator fast-path rewrite.

The fast-path PR (tuple-heap scheduler, allocation-lean Kademlia
messaging, incremental snapshot graphs, flow-pool reuse) must preserve
**bit-identical trajectories**: same seed ⇒ same event order, same
snapshots, same per-snapshot connectivity statistics.  The constants
below were captured by running the *pre-rewrite* implementation (commit
``7ef2694``) on this exact scenario/profile/seed matrix; the suite
asserts the current implementation still reproduces them.

The digest (:func:`repro.experiments.persistence.trajectory_digest`)
covers the full result document — transport counters, join/leave counts,
the connectivity time series and the raw routing-table snapshots
(including row order, which encodes the buckets' least-recently-seen
order) — excluding only wall-clock timings.  Event counts and snapshot
times are asserted separately so a failure localises quickly.

If a change breaks these digests it changes simulated trajectories:
either fix it, or (for an intentional semantic change) re-baseline the
constants AND invalidate the persistent result cache in the same PR.
"""

import os

import pytest

from repro.experiments.persistence import trajectory_digest
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario

SEED = 42

#: CI sets REPRO_ADAPTIVE_SHARDS=1 to re-run this whole suite with the
#: cost-aware pair-flow scheduling enabled: every golden digest below must
#: hold with it on or off (the scheduler's order-invariance guarantee).
ADAPTIVE_SHARDS = os.environ.get("REPRO_ADAPTIVE_SHARDS", "") == "1"

#: (profile, scenario) -> digest of the pre-rewrite implementation.
GOLDEN_DIGESTS = {
    ("tiny", "A"): "cf0f4cb8bbd8a497cef3a11ffaf3c432c46ecd92687f77000b93815d1a41dab9",
    ("tiny", "E"): "fc166f8e8625eed963ae20e200a3027bf2b93f8174aff5307c98975aa0d5986f",
    ("tiny", "K"): "a4c1ad2f2b00413696e8ef37f92c6a9b5ec561092faaa37a547f2186f510fc5d",
    ("smoke", "E"): "0a3ce5fa0536a348de7460626991bc2489fb01ba13b9a1dd1ddab0d5b59a913b",
}

#: (profile, scenario) -> (events processed, live pending events at the end,
#: snapshot times) of the pre-rewrite event loop.
GOLDEN_EVENTS = {
    ("tiny", "A"): (94, 16, [4.0, 8.0, 12.0, 16.0, 20.0, 24.0]),
    ("tiny", "E"): (1203, 26, [4.0, 8.0, 12.0, 16.0, 20.0, 22.0]),
    ("tiny", "K"): (2289, 40, [4.0, 8.0, 12.0, 16.0, 20.0, 22.0]),
    ("smoke", "E"): (1511, 36, [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 27.0]),
}


def run_result(
    profile: str,
    scenario: str,
    flow_jobs: int = 1,
    adaptive_shards: bool = ADAPTIVE_SHARDS,
):
    runner = ExperimentRunner(
        profile=profile, seed=SEED, keep_snapshots=True, flow_jobs=flow_jobs,
        adaptive_shards=adaptive_shards,
    )
    return runner.run(get_scenario(scenario))


class TestTrajectoryDigests:
    @pytest.mark.parametrize("profile,scenario", sorted(GOLDEN_DIGESTS))
    def test_serial_digest_matches_pre_rewrite(self, profile, scenario):
        result = run_result(profile, scenario)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[(profile, scenario)]

    def test_parallel_flow_jobs_digest_matches_serial(self):
        # --flow-jobs is an execution knob, not an experiment parameter:
        # the shard/wave structure (and with it every statistic) must not
        # depend on the worker count, including with the run-wide shared
        # worker pool.
        result = run_result("tiny", "E", flow_jobs=2)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]

    def test_adaptive_shards_digest_matches_canonical(self):
        # --adaptive-shards reorders the minimum pass and resizes dispatch
        # shards from observed costs; the trajectory (snapshots included)
        # must not move by a single bit, serial or pooled.
        result = run_result("tiny", "E", adaptive_shards=True)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]
        result = run_result("tiny", "E", flow_jobs=2, adaptive_shards=True)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]


class TestSchedulingOrderInvariance:
    """--schedule cheapest + --adaptive-shards may change only *when* a
    task runs, never its digest — gated on every push by CI."""

    def test_cheapest_campaign_reproduces_golden_digests(self, tmp_path):
        from repro.runtime import (
            SCHEDULE_CHEAPEST,
            Campaign,
            ExperimentTask,
            ResultCache,
            TaskCostModel,
        )

        tasks = [
            ExperimentTask.create(
                scenario=get_scenario(scenario), profile=profile, seed=SEED,
                keep_snapshots=True, adaptive_shards=True,
            )
            for profile, scenario in (("tiny", "E"), ("tiny", "A"))
        ]
        # Prime the model so "cheapest" really reorders: the expensive
        # task (E, submitted first) must be dispatched after A.
        model = TaskCostModel()
        model.observe_task(tasks[0], 60.0)
        model.observe_task(tasks[1], 1.0)
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"),
            progress=events.append,
            schedule=SCHEDULE_CHEAPEST,
            cost_model=model,
        )
        results = campaign.run(tasks)
        assert [event.index for event in events] == [1, 0]  # reordered
        assert trajectory_digest(results[0]) == GOLDEN_DIGESTS[("tiny", "E")]
        assert trajectory_digest(results[1]) == GOLDEN_DIGESTS[("tiny", "A")]


class TestEventAccounting:
    @pytest.mark.parametrize("profile,scenario", sorted(GOLDEN_EVENTS))
    def test_event_counts_and_snapshot_times(self, profile, scenario):
        runner = ExperimentRunner(profile=profile, seed=SEED)
        scen = get_scenario(scenario)
        simulation = runner.build_simulation(scen)
        phases = runner.phase_schedule(scen)
        size = runner.profile.network_size(scen.size_class)
        snapshots = []
        simulation.schedule_setup(size, runner.profile.setup_minutes)
        simulation.schedule_traffic(1.0, phases.simulation_end)
        simulation.schedule_churn(phases.stabilization_end, phases.simulation_end)
        simulation.schedule_snapshots(
            phases.snapshot_times(runner.profile.snapshot_interval_minutes),
            snapshots.append,
        )
        simulation.run_until(phases.simulation_end)

        events, pending, times = GOLDEN_EVENTS[(profile, scenario)]
        assert simulation.simulator.events_processed == events
        assert simulation.simulator.pending_events == pending
        assert [snapshot.time for snapshot in snapshots] == times
