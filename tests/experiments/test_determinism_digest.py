"""Seeded-run digests pinned across the simulator fast-path rewrite.

The fast-path PR (tuple-heap scheduler, allocation-lean Kademlia
messaging, incremental snapshot graphs, flow-pool reuse) must preserve
**bit-identical trajectories**: same seed ⇒ same event order, same
snapshots, same per-snapshot connectivity statistics.  The constants
below were captured by running the *pre-rewrite* implementation (commit
``7ef2694``) on this exact scenario/profile/seed matrix; the suite
asserts the current implementation still reproduces them.

The digest (:func:`repro.experiments.persistence.trajectory_digest`)
covers the full result document — transport counters, join/leave counts,
the connectivity time series and the raw routing-table snapshots
(including row order, which encodes the buckets' least-recently-seen
order) — excluding only wall-clock timings.  Event counts and snapshot
times are asserted separately so a failure localises quickly.

If a change breaks these digests it changes simulated trajectories:
either fix it, or (for an intentional semantic change) re-baseline the
constants AND invalidate the persistent result cache in the same PR.
"""

import copy
import json
import os
from pathlib import Path

import pytest

from repro.experiments.persistence import trajectory_digest
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario

SEED = 42

#: CI sets REPRO_ADAPTIVE_SHARDS=1 to re-run this whole suite with the
#: cost-aware pair-flow scheduling enabled: every golden digest below must
#: hold with it on or off (the scheduler's order-invariance guarantee).
ADAPTIVE_SHARDS = os.environ.get("REPRO_ADAPTIVE_SHARDS", "") == "1"

#: (profile, scenario) -> digest of the pre-rewrite implementation.
GOLDEN_DIGESTS = {
    ("tiny", "A"): "cf0f4cb8bbd8a497cef3a11ffaf3c432c46ecd92687f77000b93815d1a41dab9",
    ("tiny", "E"): "fc166f8e8625eed963ae20e200a3027bf2b93f8174aff5307c98975aa0d5986f",
    ("tiny", "K"): "a4c1ad2f2b00413696e8ef37f92c6a9b5ec561092faaa37a547f2186f510fc5d",
    ("smoke", "E"): "0a3ce5fa0536a348de7460626991bc2489fb01ba13b9a1dd1ddab0d5b59a913b",
}

#: (profile, scenario, protocol) -> digest, pinned when the overlay seam
#: was introduced: Chord and Pastry run the same churn/attack scenarios
#: through the shared resilience pipeline, and their trajectories are as
#: frozen as Kademlia's.  Every digest must hold with adaptive shards on
#: or off and with observability on or off (obs is identity-free).
OVERLAY_GOLDEN_DIGESTS = {
    ("tiny", "A", "chord"): "7787c685eb15104026d00ea68e75df36e5b0a9ca08169b310920ea010d6dcbf4",
    ("tiny", "E", "chord"): "03e452134d3da5f4fa4ed48c403b9b446a69f391ef8fe1dcd7fb36412b670329",
    ("tiny", "A", "pastry"): "cbbb78730f18b1f8d0220acd3bddb36cbd236ac52e3bfbc557dfbf6293e6fa0e",
    ("tiny", "E", "pastry"): "fa0097b0095921c552dce5d6b0d35e14ec93fe8c393c631b4508cf97f1d5d3d7",
}

#: (profile, scenario) -> (events processed, live pending events at the end,
#: snapshot times) of the pre-rewrite event loop.
GOLDEN_EVENTS = {
    ("tiny", "A"): (94, 16, [4.0, 8.0, 12.0, 16.0, 20.0, 24.0]),
    ("tiny", "E"): (1203, 26, [4.0, 8.0, 12.0, 16.0, 20.0, 22.0]),
    ("tiny", "K"): (2289, 40, [4.0, 8.0, 12.0, 16.0, 20.0, 22.0]),
    ("smoke", "E"): (1511, 36, [4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 27.0]),
}


def run_result(
    profile: str,
    scenario: str,
    flow_jobs: int = 1,
    adaptive_shards: bool = ADAPTIVE_SHARDS,
):
    runner = ExperimentRunner(
        profile=profile, seed=SEED, keep_snapshots=True, flow_jobs=flow_jobs,
        adaptive_shards=adaptive_shards,
    )
    return runner.run(get_scenario(scenario))


class TestTrajectoryDigests:
    @pytest.mark.parametrize("profile,scenario", sorted(GOLDEN_DIGESTS))
    def test_serial_digest_matches_pre_rewrite(self, profile, scenario):
        result = run_result(profile, scenario)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[(profile, scenario)]

    def test_parallel_flow_jobs_digest_matches_serial(self):
        # --flow-jobs is an execution knob, not an experiment parameter:
        # the shard/wave structure (and with it every statistic) must not
        # depend on the worker count, including with the run-wide shared
        # worker pool.
        result = run_result("tiny", "E", flow_jobs=2)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]

    def test_adaptive_shards_digest_matches_canonical(self):
        # --adaptive-shards reorders the minimum pass and resizes dispatch
        # shards from observed costs; the trajectory (snapshots included)
        # must not move by a single bit, serial or pooled.
        result = run_result("tiny", "E", adaptive_shards=True)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]
        result = run_result("tiny", "E", flow_jobs=2, adaptive_shards=True)
        assert trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", "E")]


class TestOverlayTrajectoryDigests:
    """The protocol axis of the determinism gate.

    The scenario's ``protocol`` dimension selects the overlay via
    :mod:`repro.overlay`; the pinned digests freeze the Chord and Pastry
    trajectories exactly like the Kademlia ones above.  Kademlia needs no
    entry here — its scenarios ARE the ``GOLDEN_DIGESTS`` rows, untouched
    by the overlay refactor by construction (legacy-stable encoding).
    """

    @pytest.mark.parametrize(
        "profile,scenario,protocol", sorted(OVERLAY_GOLDEN_DIGESTS)
    )
    def test_digest_matches_pinned(self, profile, scenario, protocol):
        runner = ExperimentRunner(
            profile=profile, seed=SEED, keep_snapshots=True,
            adaptive_shards=ADAPTIVE_SHARDS,
        )
        result = runner.run(
            get_scenario(scenario).with_overrides(protocol=protocol)
        )
        assert (
            trajectory_digest(result)
            == OVERLAY_GOLDEN_DIGESTS[(profile, scenario, protocol)]
        )

    def test_overlay_snapshots_carry_their_protocol(self):
        runner = ExperimentRunner(profile="tiny", seed=SEED, keep_snapshots=True)
        result = runner.run(get_scenario("A").with_overrides(protocol="chord"))
        assert result.snapshots
        assert all(s.protocol == "chord" for s in result.snapshots)


class TestSchedulingOrderInvariance:
    """--schedule cheapest + --adaptive-shards may change only *when* a
    task runs, never its digest — gated on every push by CI."""

    def test_cheapest_campaign_reproduces_golden_digests(self, tmp_path):
        from repro.runtime import (
            SCHEDULE_CHEAPEST,
            Campaign,
            ExperimentTask,
            ResultCache,
            TaskCostModel,
        )

        tasks = [
            ExperimentTask.create(
                scenario=get_scenario(scenario), profile=profile, seed=SEED,
                keep_snapshots=True, adaptive_shards=True,
            )
            for profile, scenario in (("tiny", "E"), ("tiny", "A"))
        ]
        # Prime the model so "cheapest" really reorders: the expensive
        # task (E, submitted first) must be dispatched after A.
        model = TaskCostModel()
        model.observe_task(tasks[0], 60.0)
        model.observe_task(tasks[1], 1.0)
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"),
            progress=events.append,
            schedule=SCHEDULE_CHEAPEST,
            cost_model=model,
        )
        results = campaign.run(tasks)
        assert [event.index for event in events] == [1, 0]  # reordered
        assert trajectory_digest(results[0]) == GOLDEN_DIGESTS[("tiny", "E")]
        assert trajectory_digest(results[1]) == GOLDEN_DIGESTS[("tiny", "A")]

    def test_batched_worker_pool_reproduces_golden_digests(self, tmp_path):
        # Real batching, not the serial degenerate case: a 2-worker pool
        # with multi-task batches must reproduce the golden digests bit
        # for bit.  This is what makes the CI batching gate non-vacuous —
        # a bug in batch packing, index mapping or worker-side result
        # keying lands here, not only in the executor-vs-executor
        # comparisons of the runtime suite.
        from repro.runtime import Campaign, ExperimentTask, ParallelExecutor

        tasks = [
            ExperimentTask.create(
                scenario=get_scenario(scenario), profile="tiny", seed=SEED,
                keep_snapshots=True, adaptive_shards=ADAPTIVE_SHARDS,
            )
            for scenario in ("E", "A", "K")
        ]
        with Campaign(
            executor=ParallelExecutor(jobs=2), batch=2
        ) as campaign:
            results = campaign.run(tasks)
        for result, scenario in zip(results, ("E", "A", "K")):
            assert (
                trajectory_digest(result) == GOLDEN_DIGESTS[("tiny", scenario)]
            ), f"batched pool diverged on tiny {scenario}"


#: Committed sample of the benchmark harness's result cache: the three
#: smallest entries of ``benchmarks/.result-cache`` (which itself is
#: local-only/gitignored), copied here so the byte-level gate runs on
#: every fresh checkout — CI included.  Written by the *pre-batching*
#: implementation; recomputed below through the batched campaign
#: backend.  Re-baseline these files together with the golden digests
#: and the local result caches, never alone.
SAMPLED_ENTRIES_DIR = Path(__file__).parent / "data" / "sampled-cache-entries"


def _normalised_entry(document: dict) -> str:
    """Canonical JSON of a cache entry with wall-clock fields removed.

    Mirrors :func:`repro.experiments.persistence.trajectory_digest`'s
    exclusions (``wall_seconds`` and each report's ``elapsed_seconds``)
    but keeps everything else — including the stored task fingerprint and
    key — so two entries compare byte-identically on the full document.
    The envelope-level integrity ``checksum`` (added after the sample was
    committed) covers the raw stored bytes including wall-clock fields,
    so it is excluded alongside them.
    """
    document = copy.deepcopy(document)
    document.pop("checksum", None)
    document["result"].pop("wall_seconds", None)
    for sample in document["result"]["series"]["samples"]:
        sample["report"].pop("elapsed_seconds", None)
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


class TestSampledCacheEntries:
    """Recompute committed cache entries through the batched backend.

    ``--batch auto`` (like every scheduling knob) must reproduce the
    persisted result documents byte-for-byte, wall-clock excluded.  The
    committed sample holds the three smallest entries of the benchmark
    result cache — deterministic and the cheapest to re-simulate.
    """

    def test_sampled_entries_recompute_byte_identically(self, tmp_path):
        from repro.runtime import Campaign, ExperimentTask, ResultCache
        from repro.experiments.profiles import ScaleProfile
        from repro.experiments.scenarios import Scenario

        sampled = sorted(SAMPLED_ENTRIES_DIR.glob("*.json"))
        assert len(sampled) == 3, "committed sample must hold 3 entries"

        for entry_path in sampled:
            committed = json.loads(entry_path.read_text(encoding="utf-8"))
            fingerprint = committed["task"]
            task = ExperimentTask(
                scenario=Scenario(**fingerprint["scenario"]),
                profile=ScaleProfile(**fingerprint["profile"]),
                seed=fingerprint["seed"],
                algorithm=fingerprint["algorithm"],
                keep_snapshots=fingerprint["keep_snapshots"],
                adaptive_shards=ADAPTIVE_SHARDS,
            )
            assert task.key() == committed["key"]  # fingerprint round-trips

            cache = ResultCache(tmp_path / "cache")
            with Campaign(cache=cache, batch="auto") as campaign:
                campaign.run_one(task)
            fresh_path = tmp_path / "cache" / entry_path.name
            fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
            assert _normalised_entry(fresh) == _normalised_entry(committed)


class TestEventAccounting:
    @pytest.mark.parametrize("profile,scenario", sorted(GOLDEN_EVENTS))
    def test_event_counts_and_snapshot_times(self, profile, scenario):
        runner = ExperimentRunner(profile=profile, seed=SEED)
        scen = get_scenario(scenario)
        simulation = runner.build_simulation(scen)
        phases = runner.phase_schedule(scen)
        size = runner.profile.network_size(scen.size_class)
        snapshots = []
        simulation.schedule_setup(size, runner.profile.setup_minutes)
        simulation.schedule_traffic(1.0, phases.simulation_end)
        simulation.schedule_churn(phases.stabilization_end, phases.simulation_end)
        simulation.schedule_snapshots(
            phases.snapshot_times(runner.profile.snapshot_interval_minutes),
            snapshots.append,
        )
        simulation.run_until(phases.simulation_end)

        events, pending, times = GOLDEN_EVENTS[(profile, scenario)]
        assert simulation.simulator.events_processed == events
        assert simulation.simulator.pending_events == pending
        assert [snapshot.time for snapshot in snapshots] == times
