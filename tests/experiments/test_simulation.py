"""Tests for the KademliaSimulation orchestration layer."""

from repro.churn.churn_model import get_churn_scenario
from repro.churn.loss import get_loss_model
from repro.churn.traffic import TrafficModel
from repro.experiments.simulation import KademliaSimulation
from repro.kademlia.config import KademliaConfig
from repro.simulator.random_source import RandomSource


def make_simulation(churn="none", loss="none", traffic_enabled=True, seed=0,
                    k=4, bit_length=32):
    config = KademliaConfig(bit_length=bit_length, bucket_size=k, alpha=2,
                            staleness_limit=1, refresh_interval_minutes=5.0)
    traffic = (TrafficModel(enabled=True, lookups_per_node_per_minute=2,
                            disseminations_per_node_per_minute=0.2)
               if traffic_enabled else TrafficModel.disabled())
    return KademliaSimulation(
        config=config,
        loss=get_loss_model(loss),
        traffic=traffic,
        churn=get_churn_scenario(churn),
        random_source=RandomSource(seed),
    )


class TestNodeLifecycle:
    def test_join_new_node_adds_alive_node(self):
        sim = make_simulation()
        first = sim.join_new_node()
        second = sim.join_new_node()
        assert sim.network.alive_count() == 2
        assert sim.joins == 2
        # The second node bootstrapped from the first.
        assert second.routing_table.contains(first.node_id)

    def test_remove_random_node(self):
        sim = make_simulation()
        sim.join_new_node()
        sim.join_new_node()
        removed = sim.remove_random_node()
        assert removed is not None
        assert sim.network.alive_count() == 1
        assert sim.leaves == 1

    def test_remove_from_empty_network(self):
        sim = make_simulation()
        assert sim.remove_random_node() is None

    def test_node_ids_unique(self):
        sim = make_simulation(bit_length=8)
        ids = {sim.join_new_node().node_id for _ in range(30)}
        assert len(ids) == 30


class TestScheduling:
    def test_setup_populates_network(self):
        sim = make_simulation(traffic_enabled=False)
        sim.schedule_setup(12, setup_duration=5.0)
        sim.run_until(5.0)
        assert sim.network.alive_count() == 12

    def test_traffic_generates_lookups(self):
        sim = make_simulation()
        sim.schedule_setup(6, setup_duration=2.0)
        sim.schedule_traffic(1.0, 8.0)
        sim.run_until(8.0)
        total_lookups = sum(p.lookups_performed for p in sim.alive_protocols())
        assert total_lookups > 0
        assert sim.transport.stats.requests_sent > 0

    def test_no_traffic_when_disabled(self):
        sim = make_simulation(traffic_enabled=False)
        sim.schedule_setup(6, setup_duration=2.0)
        sim.schedule_traffic(1.0, 8.0)
        sim.run_until(4.9)  # before the first bucket refresh at 5.0+
        lookups = sum(p.lookups_performed for p in sim.alive_protocols())
        # Only the join lookups happened (one per node), no traffic lookups.
        assert lookups == 6

    def test_churn_changes_membership(self):
        sim = make_simulation(churn="1/1", traffic_enabled=False)
        sim.schedule_setup(10, setup_duration=2.0)
        sim.schedule_churn(3.0, 10.0)
        sim.run_until(10.0)
        assert sim.joins > 10  # churn joins happened
        assert sim.leaves > 0
        assert sim.network.alive_count() == 10  # 1/1 keeps the size constant

    def test_zero_one_churn_shrinks_network(self):
        sim = make_simulation(churn="0/1", traffic_enabled=False)
        sim.schedule_setup(10, setup_duration=2.0)
        sim.schedule_churn(3.0, 8.0)
        sim.run_until(9.0)
        assert sim.network.alive_count() < 10

    def test_refresh_happens_for_alive_nodes(self):
        sim = make_simulation(traffic_enabled=False)
        sim.schedule_setup(5, setup_duration=1.0)
        sim.run_until(12.0)  # refresh interval is 5 minutes
        refreshes = sum(p.refreshes_performed for p in sim.alive_protocols())
        assert refreshes >= 5

    def test_snapshots_capture_alive_tables(self):
        sim = make_simulation(traffic_enabled=False)
        sim.schedule_setup(8, setup_duration=2.0)
        captured = []
        sim.schedule_snapshots([3.0, 6.0], captured.append)
        sim.run_until(6.0)
        assert [snap.time for snap in captured] == [3.0, 6.0]
        assert captured[0].network_size == 8
        assert sim.snapshots_taken == 2

    def test_determinism_for_same_seed(self):
        def run(seed):
            sim = make_simulation(churn="1/1", seed=seed)
            sim.schedule_setup(8, setup_duration=2.0)
            sim.schedule_traffic(1.0, 6.0)
            sim.schedule_churn(3.0, 6.0)
            sim.run_until(6.0)
            return sim.take_snapshot().routing_tables

        assert run(5) == run(5)
        assert run(5) != run(6)
