"""Tests for routing-table snapshots."""

from repro.experiments.snapshot import RoutingTableSnapshot


class TestRoutingTableSnapshot:
    def test_capture_copies_tables(self):
        tables = {1: [2, 3], 2: [1]}
        snapshot = RoutingTableSnapshot.capture(5.0, tables)
        tables[1].append(99)
        assert snapshot.routing_tables[1] == [2, 3]
        assert snapshot.network_size == 2
        assert snapshot.total_contacts() == 3
        assert sorted(snapshot.alive_nodes()) == [1, 2]

    def test_json_round_trip(self):
        snapshot = RoutingTableSnapshot.capture(7.5, {10: [20], 20: [10, 30]})
        restored = RoutingTableSnapshot.from_json(snapshot.to_json())
        assert restored.time == 7.5
        assert restored.routing_tables == {10: [20], 20: [10, 30]}

    def test_file_round_trip(self, tmp_path):
        snapshot = RoutingTableSnapshot.capture(1.0, {1: [2], 2: []})
        path = tmp_path / "snap.json"
        snapshot.save(path)
        restored = RoutingTableSnapshot.load(path)
        assert restored.routing_tables == snapshot.routing_tables

    def test_to_connectivity_graph(self):
        snapshot = RoutingTableSnapshot.capture(0.0, {1: [2], 2: [1], 3: [1]})
        graph = snapshot.to_connectivity_graph()
        assert graph.number_of_vertices() == 3
        assert graph.has_edge(3, 1)
        assert not graph.has_edge(1, 3)
