"""Tests for routing-table snapshots."""

import json
from pathlib import Path

from repro.experiments.snapshot import RoutingTableSnapshot

#: A snapshot file written by the pre-overlay code (before the
#: ``protocol`` dimension existed): tiny scenario A, seed 7, final
#: snapshot.  Committed verbatim — the backward-compat contract is that
#: these exact bytes keep loading forever.
LEGACY_SNAPSHOT = (
    Path(__file__).parent / "data" / "legacy-snapshot-pre-overlay.json"
)


class TestRoutingTableSnapshot:
    def test_capture_copies_tables(self):
        tables = {1: [2, 3], 2: [1]}
        snapshot = RoutingTableSnapshot.capture(5.0, tables)
        tables[1].append(99)
        assert snapshot.routing_tables[1] == [2, 3]
        assert snapshot.network_size == 2
        assert snapshot.total_contacts() == 3
        assert sorted(snapshot.alive_nodes()) == [1, 2]

    def test_json_round_trip(self):
        snapshot = RoutingTableSnapshot.capture(7.5, {10: [20], 20: [10, 30]})
        restored = RoutingTableSnapshot.from_json(snapshot.to_json())
        assert restored.time == 7.5
        assert restored.routing_tables == {10: [20], 20: [10, 30]}

    def test_file_round_trip(self, tmp_path):
        snapshot = RoutingTableSnapshot.capture(1.0, {1: [2], 2: []})
        path = tmp_path / "snap.json"
        snapshot.save(path)
        restored = RoutingTableSnapshot.load(path)
        assert restored.routing_tables == snapshot.routing_tables

    def test_to_connectivity_graph(self):
        snapshot = RoutingTableSnapshot.capture(0.0, {1: [2], 2: [1], 3: [1]})
        graph = snapshot.to_connectivity_graph()
        assert graph.number_of_vertices() == 3
        assert graph.has_edge(3, 1)
        assert not graph.has_edge(1, 3)


class TestProtocolDimension:
    def test_capture_defaults_to_kademlia(self):
        snapshot = RoutingTableSnapshot.capture(0.0, {1: [2]})
        assert snapshot.protocol == "kademlia"

    def test_kademlia_json_encoding_is_legacy_stable(self):
        # Kademlia snapshots must serialise to the exact pre-overlay shape
        # (no "protocol" key): their bytes feed the pinned trajectory
        # digests.
        snapshot = RoutingTableSnapshot.capture(2.0, {1: [2]}, "kademlia")
        payload = json.loads(snapshot.to_json())
        assert set(payload) == {"time", "routing_tables"}

    def test_non_kademlia_json_round_trip(self):
        snapshot = RoutingTableSnapshot.capture(3.0, {1: [2], 2: [1]}, "chord")
        payload = json.loads(snapshot.to_json())
        assert payload["protocol"] == "chord"
        restored = RoutingTableSnapshot.from_json(snapshot.to_json())
        assert restored.protocol == "chord"
        assert restored == snapshot

    def test_non_kademlia_file_round_trip(self, tmp_path):
        snapshot = RoutingTableSnapshot.capture(4.0, {7: [8]}, "pastry")
        path = tmp_path / "snap.json"
        snapshot.save(path)
        assert RoutingTableSnapshot.load(path) == snapshot


class TestLegacyPayloadCompat:
    def test_committed_pre_overlay_snapshot_loads_as_kademlia(self):
        snapshot = RoutingTableSnapshot.load(LEGACY_SNAPSHOT)
        assert snapshot.protocol == "kademlia"
        assert snapshot.time == 24.0
        assert snapshot.network_size == 4
        # The rows survived intact: every contact id is a proper int.
        for node_id, contacts in snapshot.routing_tables.items():
            assert isinstance(node_id, int)
            assert contacts
            assert all(isinstance(c, int) for c in contacts)

    def test_legacy_round_trip_is_byte_identical(self):
        # load -> to_json must reproduce the committed bytes exactly:
        # the kademlia encoding is frozen, so a legacy file re-saved by
        # the new code is indistinguishable from the original.
        original = LEGACY_SNAPSHOT.read_text().strip()
        snapshot = RoutingTableSnapshot.from_json(original)
        assert snapshot.to_json() == original

    def test_from_json_defaults_missing_protocol_to_kademlia(self):
        restored = RoutingTableSnapshot.from_json(
            '{"time": 1.0, "routing_tables": {"1": [2]}}'
        )
        assert restored.protocol == "kademlia"
        assert restored.routing_tables == {1: [2]}
