"""Integration tests: the experiment runner, sweeps and report generators.

These run real (tiny-profile) simulations, so they are the slowest tests in
the suite; they validate the full pipeline the benchmarks rely on.
"""

import pytest

from repro.experiments.profiles import get_profile
from repro.experiments.report import (
    figure10_rows,
    figure_series,
    figure_times,
    format_figure,
    format_figure10,
    format_summaries,
    format_table1,
    format_table2,
    summary_rows,
    table1_rows,
    table2_rows,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import (
    run_bucket_size_sweep,
    run_loss_sweep,
    run_scenario,
    run_staleness_sweep,
)


@pytest.fixture(scope="module")
def tiny_result():
    """One shared tiny-profile run of Simulation E."""
    runner = ExperimentRunner(profile="tiny", seed=3)
    return runner.run(get_scenario("E").with_overrides(bucket_size=5))


class TestExperimentRunner:
    def test_series_covers_all_phases(self, tiny_result):
        phases = tiny_result.phases
        times = tiny_result.series.times()
        assert times[-1] == phases.simulation_end
        assert any(t <= phases.setup_end for t in times)
        assert any(t > phases.stabilization_end for t in times)

    def test_network_size_tracks_scenario(self, tiny_result):
        profile = get_profile("tiny")
        sizes = tiny_result.series.network_size_series()
        # Churn 1/1 keeps the size at the small-profile value once set up.
        assert max(sizes) == profile.small_network_size
        assert tiny_result.final_network_size() == profile.small_network_size

    def test_summary_fields(self, tiny_result):
        summary = tiny_result.summary()
        assert summary["scenario"].startswith("E")
        assert summary["k"] == 5
        assert summary["churn"] == "1/1"
        assert summary["churn_mean_min"] >= 0
        assert summary["churn_rv_min"] >= 0

    def test_transport_saw_traffic(self, tiny_result):
        assert tiny_result.transport_stats.requests_sent > 0
        assert tiny_result.joins >= get_profile("tiny").small_network_size

    def test_reproducibility(self):
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        first = ExperimentRunner(profile="tiny", seed=11).run(scenario)
        second = ExperimentRunner(profile="tiny", seed=11).run(scenario)
        assert first.series.minimum_series() == second.series.minimum_series()
        assert first.series.average_series() == second.series.average_series()

    def test_keep_snapshots_option(self):
        runner = ExperimentRunner(profile="tiny", seed=2, keep_snapshots=True)
        result = runner.run(get_scenario("J").with_overrides(bucket_size=5))
        assert len(result.snapshots) == len(result.series)
        assert result.snapshots[0].network_size == result.series.samples[0].network_size

    def test_zero_one_churn_shrinks_network(self):
        runner = ExperimentRunner(profile="tiny", seed=4)
        result = runner.run(get_scenario("C").with_overrides(bucket_size=5))
        sizes = result.series.network_size_series()
        assert sizes[-1] < max(sizes)
        assert sizes[-1] <= get_profile("tiny").min_remaining_nodes + 1


class TestSweeps:
    def test_run_scenario_helper(self):
        result = run_scenario(get_scenario("E").with_overrides(bucket_size=5),
                              profile="tiny", seed=5)
        assert result.scenario.bucket_size == 5

    def test_bucket_size_sweep_keys(self):
        results = run_bucket_size_sweep(get_scenario("E"), bucket_sizes=(3, 5),
                                        profile="tiny", seed=5)
        assert sorted(results) == [3, 5]
        assert results[3].scenario.bucket_size == 3

    def test_staleness_sweep(self):
        results = run_staleness_sweep(get_scenario("I"), staleness_values=(1, 5),
                                      profile="tiny", seed=5)
        assert sorted(results) == [1, 5]
        assert results[5].scenario.staleness_limit == 5

    def test_loss_sweep(self):
        results = run_loss_sweep(get_scenario("J"), loss_levels=("low",),
                                 staleness_values=(1,), profile="tiny", seed=5)
        assert list(results) == [("low", 1)]
        assert results[("low", 1)].scenario.loss == "low"


class TestReports:
    def test_table1_matches_paper(self):
        rows = table1_rows()
        assert [row["loss"] for row in rows] == ["none", "low", "medium", "high"]
        assert [row["p_loss_two_way"] for row in rows] == [0.0, 4.9, 25.0, 50.0]
        text = format_table1()
        assert "Ploss(2-way)" in text

    def test_table2_rows_and_formatting(self, tiny_result):
        rows = table2_rows([tiny_result])
        assert rows[0]["k"] == 5
        assert rows[0]["churn"] == "1/1"
        assert "Mean" in format_table2([tiny_result])

    def test_figure_series_structure(self, tiny_result):
        results = {5: tiny_result}
        series = figure_series(results)
        assert set(series) == {"Avg (5)", "Min (5)", "Network size"}
        assert len(series["Min (5)"]) == len(figure_times(results))
        text = format_figure(results, "Figure test")
        assert text.startswith("Figure test")

    def test_figure10_rows(self, tiny_result):
        rows = figure10_rows({("1/1", 3, 5): tiny_result})
        assert rows[0]["churn"] == "1/1"
        assert rows[0]["alpha"] == 3
        assert rows[0]["k"] == 5
        text = format_figure10({("1/1", 3, 5): tiny_result}, "Figure 10")
        assert "Mean min connectivity" in text

    def test_summaries(self, tiny_result):
        rows = summary_rows([tiny_result])
        assert rows[0]["scenario"].startswith("E")
        assert "stabilized_min" in format_summaries([tiny_result])
