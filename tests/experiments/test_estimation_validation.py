"""Exact-vs-estimate validation across the three overlay protocols.

This is the estimator's trust gate (run as-is in CI): on snapshots small
enough for the exhaustive O(n^2) pipeline, the estimator's confidence
interval must contain the true average connectivity and its minimum
bound must dominate the true minimum — for Kademlia, Chord, and Pastry
snapshots alike, on both a churn-free and a churned scenario.

Everything here is fully deterministic (fixed seeds end to end), so a
pass on one host is a pass on every host.
"""

import pytest

from repro.core.connectivity_graph import build_connectivity_graph
from repro.core.estimation import validate_exact_vs_estimate
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario

SEED = 42
SAMPLE_PAIRS = 64

#: (scenario, protocol) matrix: A = small/no churn, E = small/churn 1/1.
MATRIX = [
    ("A", "kademlia"),
    ("A", "chord"),
    ("A", "pastry"),
    ("E", "kademlia"),
    ("E", "chord"),
    ("E", "pastry"),
]


def final_graph(scenario: str, protocol: str):
    base = get_scenario(scenario)
    if protocol != "kademlia":
        base = base.with_overrides(protocol=protocol)
    runner = ExperimentRunner(profile="tiny", seed=SEED, keep_snapshots=True)
    result = runner.run(base)
    snapshot = result.snapshots[-1]
    return build_connectivity_graph(snapshot.routing_tables)


@pytest.mark.parametrize("scenario,protocol", MATRIX)
def test_exact_average_inside_estimated_ci(scenario, protocol):
    graph = final_graph(scenario, protocol)
    validation = validate_exact_vs_estimate(
        graph, sample_pairs=SAMPLE_PAIRS, seed=SEED
    )
    assert validation.average_within_ci, (
        f"{protocol}/{scenario}: exact average {validation.exact_average} "
        f"outside CI [{validation.estimate.ci_low}, {validation.estimate.ci_high}]"
    )
    assert validation.minimum_bound_valid, (
        f"{protocol}/{scenario}: bound {validation.estimate.minimum_bound} "
        f"invalid against exact minimum {validation.exact_minimum}"
    )


def test_validation_is_deterministic():
    graph = final_graph("A", "kademlia")
    first = validate_exact_vs_estimate(graph, sample_pairs=SAMPLE_PAIRS, seed=SEED)
    second = validate_exact_vs_estimate(graph, sample_pairs=SAMPLE_PAIRS, seed=SEED)
    doc_a = first.estimate.as_dict()
    doc_b = second.estimate.as_dict()
    doc_a.pop("elapsed_seconds"), doc_b.pop("elapsed_seconds")
    assert doc_a == doc_b
    assert first.exact_average == second.exact_average
