"""Estimation mode through the task/runner/persistence pipeline.

The contract under test is two-sided:

* **Exact mode is untouched.**  Tasks without ``connectivity="estimate"``
  fingerprint, serialize, and digest exactly as before the estimator
  landed — no new keys, no re-keyed caches.
* **Estimate mode is a distinct identity.**  Estimated runs carry a
  ``connectivity`` fingerprint dimension (mode, budget, CI level), their
  reports round-trip through persistence, and — like every analyzer —
  the estimate is invariant under the identity-free scheduling knobs
  (``flow_jobs``, ``adaptive_shards``).
"""

import pytest

from repro.core.analyzer import ConnectivityReport
from repro.core.estimation import EstimatedConnectivityReport
from repro.experiments.persistence import (
    result_from_dict,
    result_to_dict,
    trajectory_digest,
)
from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.runtime.campaign import sweep_tasks
from repro.runtime.task import ExperimentTask

SEED = 42


def make_task(**overrides):
    parameters = dict(
        scenario=get_scenario("A"),
        profile=get_profile("tiny"),
        seed=SEED,
    )
    parameters.update(overrides)
    return ExperimentTask.create(**parameters)


class TestTaskFingerprint:
    def test_exact_fingerprint_has_no_connectivity_key(self):
        # Byte-stability: the default (exact) fingerprint must be
        # identical to what pre-estimator code produced, so existing
        # cache entries keep resolving.
        assert "connectivity" not in make_task().fingerprint()
        assert "connectivity" not in make_task(connectivity="exact").fingerprint()

    def test_estimate_fingerprint_carries_dimension(self):
        fingerprint = make_task(
            connectivity="estimate", sample_pairs=128, ci_level=0.9
        ).fingerprint()
        assert fingerprint["connectivity"] == {
            "mode": "estimate",
            "sample_pairs": 128,
            "ci_level": 0.9,
        }

    def test_exact_and_estimate_keys_differ(self):
        assert make_task().key() != make_task(connectivity="estimate").key()

    def test_sampling_parameters_are_identity_bearing(self):
        base = make_task(connectivity="estimate", sample_pairs=128)
        assert base.key() != make_task(
            connectivity="estimate", sample_pairs=256
        ).key()
        assert base.key() != make_task(
            connectivity="estimate", sample_pairs=128, ci_level=0.99
        ).key()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_task(connectivity="approximate")

    def test_sweep_tasks_thread_the_mode(self):
        tasks = sweep_tasks(
            get_scenario("A"),
            [{"bucket_size": 3}, {"bucket_size": 5}],
            profile=get_profile("tiny"),
            seed=SEED,
            connectivity="estimate",
            sample_pairs=64,
        )
        for task in tasks:
            assert task.connectivity == "estimate"
            assert task.sample_pairs == 64


class TestRunnerEstimateMode:
    @pytest.fixture(scope="class")
    def estimate_result(self):
        runner = ExperimentRunner(
            profile="tiny", seed=SEED, keep_snapshots=True,
            connectivity="estimate", sample_pairs=64,
        )
        return runner.run(get_scenario("A"))

    def test_samples_are_estimated_reports(self, estimate_result):
        reports = [s.report for s in estimate_result.series.samples]
        assert reports
        assert all(
            isinstance(report, EstimatedConnectivityReport) for report in reports
        )
        assert all(not report.is_exact for report in reports)

    def test_timeseries_reads_protocol_surface(self, estimate_result):
        series = estimate_result.series
        assert series.minimum_series()
        assert series.average_series()
        sample = series.samples[-1]
        assert sample.minimum == sample.report.min_connectivity
        assert sample.average == sample.report.avg_connectivity

    def test_exact_run_still_yields_exact_reports(self):
        runner = ExperimentRunner(profile="tiny", seed=SEED, keep_snapshots=True)
        result = runner.run(get_scenario("A"))
        assert all(
            type(s.report) is ConnectivityReport for s in result.series.samples
        )

    def test_persistence_round_trip(self, estimate_result):
        document = result_to_dict(estimate_result, include_snapshots=True)
        sample_doc = document["series"]["samples"][0]["report"]
        assert sample_doc["estimated"] is True
        restored = result_from_dict(document)
        assert isinstance(
            restored.series.samples[0].report, EstimatedConnectivityReport
        )
        assert trajectory_digest(restored) == trajectory_digest(estimate_result)

    def test_estimate_digest_invariant_under_scheduling_knobs(self, estimate_result):
        # flow_jobs / adaptive_shards are identity-free for the estimator
        # exactly as for the exact analyzer: the sampled pair set and
        # every reported bit must not move.
        knobbed = ExperimentRunner(
            profile="tiny", seed=SEED, keep_snapshots=True,
            connectivity="estimate", sample_pairs=64,
            flow_jobs=2, adaptive_shards=True,
        ).run(get_scenario("A"))
        assert trajectory_digest(knobbed) == trajectory_digest(estimate_result)

    def test_for_task_round_trips_estimation_parameters(self):
        task = make_task(connectivity="estimate", sample_pairs=32, ci_level=0.9)
        runner = ExperimentRunner.for_task(task)
        assert runner.connectivity == "estimate"
        assert runner.sample_pairs == 32
        assert runner.ci_level == 0.9

    def test_runner_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ExperimentRunner(profile="tiny", connectivity="guess")
