"""Tests for scale profiles, the phase schedule and the scenario registry."""

import pytest

from repro.experiments.phases import CHURN, SETUP, STABILIZATION, PhaseSchedule
from repro.experiments.profiles import PROFILES, get_profile
from repro.experiments.scenarios import (
    PAPER_BUCKET_SIZES,
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    bucket_size_variants,
    get_scenario,
)


class TestProfiles:
    def test_registry_contains_expected_profiles(self):
        assert set(PROFILES) == {"paper", "bench", "tiny", "smoke"}

    def test_paper_profile_matches_paper_numbers(self):
        paper = get_profile("paper")
        assert paper.small_network_size == 250
        assert paper.large_network_size == 2500
        assert paper.setup_minutes == 30.0
        assert paper.churn_start == 120.0
        assert paper.lookups_per_node_per_minute == 10.0
        assert paper.refresh_interval_minutes == 60.0
        assert paper.source_fraction == 0.02

    def test_network_size_lookup(self):
        bench = get_profile("bench")
        assert bench.network_size("small") < bench.network_size("large")
        with pytest.raises(ValueError):
            bench.network_size("medium")

    def test_simulation_end_for_zero_one_churn_depends_on_size(self):
        paper = get_profile("paper")
        assert paper.simulation_end("0/1", 250) == 120.0 + 240.0
        assert paper.simulation_end("0/1", 2500) == 120.0 + 2490.0

    def test_simulation_end_for_steady_churn_is_fixed(self):
        paper = get_profile("paper")
        assert paper.simulation_end("1/1", 250) == 120.0 + 1280.0
        assert paper.simulation_end("none", 2500) == 120.0 + 1280.0

    def test_with_overrides(self):
        bench = get_profile("bench").with_overrides(small_network_size=10)
        assert bench.small_network_size == 10

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown profile"):
            get_profile("huge")


class TestPhaseSchedule:
    def test_phase_classification(self):
        phases = PhaseSchedule(setup_end=30, stabilization_end=120, simulation_end=400)
        assert phases.phase_of(5) == SETUP
        assert phases.phase_of(60) == STABILIZATION
        assert phases.phase_of(130) == CHURN
        assert phases.churn_window() == (120, 400)
        assert phases.churn_duration == 280

    def test_invalid_boundaries(self):
        with pytest.raises(ValueError):
            PhaseSchedule(setup_end=0, stabilization_end=10, simulation_end=20)
        with pytest.raises(ValueError):
            PhaseSchedule(setup_end=30, stabilization_end=20, simulation_end=40)

    def test_snapshot_times_include_end(self):
        phases = PhaseSchedule(setup_end=10, stabilization_end=30, simulation_end=65)
        times = phases.snapshot_times(20.0)
        assert times == [20.0, 40.0, 60.0, 65.0]
        with pytest.raises(ValueError):
            phases.snapshot_times(0)


class TestScenarios:
    def test_registry_contains_a_through_l(self):
        assert SCENARIOS.names() == list("ABCDEFGHIJKL")

    def test_scenario_dimensions_match_paper(self):
        assert get_scenario("A").traffic is False
        assert get_scenario("C").traffic is True
        assert get_scenario("B").size_class == "large"
        assert get_scenario("E").churn == "1/1"
        assert get_scenario("G").churn == "10/10"
        assert get_scenario("J").churn == "none"
        assert get_scenario("L").churn == "10/10"
        # Simulations with churn, no loss, not about s: staleness limit 1.
        for name in "ABCDEFGH":
            assert get_scenario(name).staleness_limit == 1

    def test_with_overrides_renames(self):
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        assert scenario.bucket_size == 5
        assert scenario.name == "E[bucket_size=5]"
        assert get_scenario("E").bucket_size == 20  # original untouched

    def test_kademlia_config_derivation(self):
        scenario = get_scenario("E").with_overrides(bucket_size=10, alpha=5)
        config = scenario.kademlia_config(refresh_interval_minutes=15.0)
        assert config.bucket_size == 10
        assert config.alpha == 5
        assert config.refresh_interval_minutes == 15.0

    def test_invalid_scenario_fields(self):
        with pytest.raises(ValueError):
            Scenario(name="X", description="bad size", size_class="medium")
        with pytest.raises(KeyError):
            Scenario(name="X", description="bad loss", loss="extreme")

    def test_bucket_size_variants(self):
        variants = bucket_size_variants(get_scenario("E"))
        assert [v.bucket_size for v in variants] == list(PAPER_BUCKET_SIZES)

    def test_registry_rejects_duplicates(self):
        registry = ScenarioRegistry()
        registry.register(Scenario(name="X", description="one"))
        with pytest.raises(ValueError):
            registry.register(Scenario(name="X", description="two"))
        with pytest.raises(KeyError):
            registry.get("Y")

    def test_label_mentions_all_dimensions(self):
        label = get_scenario("E").label()
        for token in ("churn 1/1", "k=20", "alpha=3", "b=160", "s=1"):
            assert token in label
