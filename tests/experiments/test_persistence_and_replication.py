"""Tests for result persistence and multi-seed replication."""

import json

import pytest

from repro.experiments.persistence import (
    FORMAT_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.experiments.replication import ReplicatedStatistic, replicate_scenario
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario


@pytest.fixture(scope="module")
def tiny_result_with_snapshots():
    runner = ExperimentRunner(profile="tiny", seed=9, keep_snapshots=True)
    return runner.run(get_scenario("E").with_overrides(bucket_size=5))


class TestPersistence:
    def test_round_trip_preserves_series(self, tiny_result_with_snapshots, tmp_path):
        path = tmp_path / "result.json"
        save_result(tiny_result_with_snapshots, path)
        restored = load_result(path)
        assert restored.scenario.bucket_size == 5
        assert restored.scenario.churn == "1/1"
        assert restored.series.minimum_series() == \
            tiny_result_with_snapshots.series.minimum_series()
        assert restored.series.average_series() == \
            tiny_result_with_snapshots.series.average_series()
        assert restored.phases.simulation_end == \
            tiny_result_with_snapshots.phases.simulation_end
        assert restored.transport_stats.requests_sent == \
            tiny_result_with_snapshots.transport_stats.requests_sent

    def test_round_trip_preserves_summary_statistics(self, tiny_result_with_snapshots,
                                                     tmp_path):
        path = tmp_path / "result.json"
        save_result(tiny_result_with_snapshots, path)
        restored = load_result(path)
        assert restored.churn_mean_minimum() == pytest.approx(
            tiny_result_with_snapshots.churn_mean_minimum()
        )
        assert restored.churn_relative_variance_minimum() == pytest.approx(
            tiny_result_with_snapshots.churn_relative_variance_minimum()
        )

    def test_snapshots_only_when_requested(self, tiny_result_with_snapshots):
        without = result_to_dict(tiny_result_with_snapshots)
        with_snaps = result_to_dict(tiny_result_with_snapshots, include_snapshots=True)
        assert "snapshots" not in without
        assert len(with_snaps["snapshots"]) == len(tiny_result_with_snapshots.snapshots)
        restored = result_from_dict(with_snaps)
        assert restored.snapshots[0].routing_tables == \
            tiny_result_with_snapshots.snapshots[0].routing_tables

    def test_round_trip_preserves_all_recorded_fields(
        self, tiny_result_with_snapshots, tmp_path
    ):
        """transport_stats, wall_seconds and snapshots survive save/load."""
        original = tiny_result_with_snapshots
        path = tmp_path / "result.json"
        save_result(original, path, include_snapshots=True)
        restored = load_result(path)
        assert restored.transport_stats == original.transport_stats
        assert restored.wall_seconds == original.wall_seconds
        assert restored.joins == original.joins
        assert restored.leaves == original.leaves
        assert restored.seed == original.seed
        assert restored.profile_name == original.profile_name
        assert len(restored.snapshots) == len(original.snapshots)
        for restored_snap, original_snap in zip(restored.snapshots,
                                                original.snapshots):
            assert restored_snap.time == original_snap.time
            assert restored_snap.routing_tables == original_snap.routing_tables

    def test_round_trip_preserves_bootstrap_reseed(self, tmp_path):
        runner = ExperimentRunner(profile="tiny", seed=3)
        scenario = get_scenario("E").with_overrides(
            bucket_size=5, bootstrap_reseed=False
        )
        result = runner.run(scenario)
        path = tmp_path / "result.json"
        save_result(result, path)
        restored = load_result(path)
        assert restored.scenario.bootstrap_reseed is False
        assert restored.scenario == result.scenario

    def test_load_tolerates_documents_without_bootstrap_reseed(
        self, tiny_result_with_snapshots
    ):
        document = result_to_dict(tiny_result_with_snapshots)
        del document["scenario"]["bootstrap_reseed"]
        restored = result_from_dict(document)
        assert restored.scenario.bootstrap_reseed is True

    def test_format_version_checked(self, tiny_result_with_snapshots):
        document = result_to_dict(tiny_result_with_snapshots)
        document["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict(document)

    def test_document_is_json_serialisable(self, tiny_result_with_snapshots):
        document = result_to_dict(tiny_result_with_snapshots, include_snapshots=True)
        text = json.dumps(document)
        assert "routing_tables" in text


class TestReplication:
    def test_replicated_statistic_aggregates(self):
        stat = ReplicatedStatistic(name="x", values=[1.0, 2.0, 3.0])
        assert stat.mean == 2.0
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0
        assert stat.std == pytest.approx(0.8165, abs=1e-3)
        assert stat.as_dict()["replications"] == 3

    def test_single_value_statistic(self):
        stat = ReplicatedStatistic(name="x", values=[4.0])
        assert stat.std == 0.0

    def test_replicate_scenario(self):
        summary = replicate_scenario(
            get_scenario("E").with_overrides(bucket_size=5),
            seeds=(1, 2),
            profile="tiny",
        )
        assert len(summary.results) == 2
        assert set(summary.statistics) == {
            "stabilized_min", "churn_mean_min", "churn_rv_min",
            "churn_mean_avg", "final_network_size",
        }
        churn_mean = summary.statistic("churn_mean_min")
        assert len(churn_mean.values) == 2
        assert churn_mean.minimum <= churn_mean.mean <= churn_mean.maximum
        rows = summary.as_rows()
        assert len(rows) == 5

    def test_replicate_requires_seeds(self):
        with pytest.raises(ValueError):
            replicate_scenario(get_scenario("E"), seeds=())
