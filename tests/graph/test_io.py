"""Tests for DIMACS and edge-list serialisation."""

import io

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.io.dimacs import (
    DimacsFormatError,
    dimacs_string,
    read_dimacs,
    write_dimacs,
)
from repro.graph.io.edgelist import read_edgelist, write_edgelist
from repro.graph.maxflow import max_flow


class TestDimacsWrite:
    def test_roundtrip_preserves_structure(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.dimacs"
        index = write_dimacs(diamond_graph, path, source="s", sink="t")
        graph, source_id, sink_id = read_dimacs(path)
        assert graph.number_of_vertices() == diamond_graph.number_of_vertices()
        assert graph.number_of_edges() == diamond_graph.number_of_edges()
        assert source_id == index["s"]
        assert sink_id == index["t"]

    def test_roundtrip_preserves_max_flow(self, diamond_graph):
        buffer = io.StringIO()
        write_dimacs(diamond_graph, buffer, source="s", sink="t")
        buffer.seek(0)
        graph, source_id, sink_id = read_dimacs(buffer)
        original = max_flow(diamond_graph, "s", "t").as_int()
        parsed = max_flow(graph, source_id, sink_id).as_int()
        assert parsed == original == 2

    def test_comment_lines_written(self, diamond_graph):
        text = dimacs_string(diamond_graph, comment="hello\nworld")
        assert text.splitlines()[0] == "c hello"
        assert text.splitlines()[1] == "c world"

    def test_problem_line_counts(self, diamond_graph):
        text = dimacs_string(diamond_graph)
        assert "p max 4 4" in text

    def test_integer_capacities_written_without_decimal(self, diamond_graph):
        text = dimacs_string(diamond_graph)
        assert " 1\n" in text
        assert "1.0" not in text


class TestDimacsRead:
    def test_missing_problem_line(self):
        with pytest.raises(DimacsFormatError, match="missing problem line"):
            read_dimacs(io.StringIO("c only a comment\n"))

    def test_arc_before_problem_line(self):
        with pytest.raises(DimacsFormatError, match="arc before problem"):
            read_dimacs(io.StringIO("a 1 2 3\np max 2 1\n"))

    def test_arc_count_mismatch(self):
        with pytest.raises(DimacsFormatError, match="declares 2 arcs"):
            read_dimacs(io.StringIO("p max 2 2\na 1 2 3\n"))

    def test_unknown_record_type(self):
        with pytest.raises(DimacsFormatError, match="unknown record type"):
            read_dimacs(io.StringIO("p max 2 0\nx 1 2\n"))

    def test_unknown_designation(self):
        with pytest.raises(DimacsFormatError, match="unknown designation"):
            read_dimacs(io.StringIO("p max 2 0\nn 1 q\n"))

    def test_comments_and_blank_lines_ignored(self):
        text = "c comment\n\np max 2 1\nn 1 s\nn 2 t\na 1 2 5\n"
        graph, source_id, sink_id = read_dimacs(io.StringIO(text))
        assert graph.capacity(1, 2) == 5.0
        assert (source_id, sink_id) == (1, 2)

    def test_isolated_vertices_created_from_problem_line(self):
        graph, _, _ = read_dimacs(io.StringIO("p max 5 1\na 1 2 1\n"))
        assert graph.number_of_vertices() == 5


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        graph = DiGraph.from_edges([("a", "b"), ("b", "c")], capacity=2.0)
        path = tmp_path / "edges.txt"
        write_edgelist(graph, path)
        parsed = read_edgelist(path)
        assert parsed.has_edge("a", "b")
        assert parsed.capacity("b", "c") == 2.0

    def test_isolated_vertices_roundtrip(self, tmp_path):
        graph = DiGraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "b")
        path = tmp_path / "edges.txt"
        write_edgelist(graph, path)
        parsed = read_edgelist(path)
        assert parsed.has_vertex("lonely")

    def test_default_capacity_on_two_field_lines(self):
        parsed = read_edgelist(io.StringIO("a b\n"))
        assert parsed.capacity("a", "b") == 1.0

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed edge-list line"):
            read_edgelist(io.StringIO("a b c d\n"))
