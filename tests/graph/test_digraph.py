"""Unit tests for the DiGraph data structure."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.errors import (
    EdgeNotFoundError,
    NegativeCapacityError,
    SelfLoopError,
    VertexNotFoundError,
)


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.number_of_vertices() == 0
        assert graph.number_of_edges() == 0
        assert len(graph) == 0

    def test_add_vertex_and_edge(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        assert graph.has_vertex("a")
        assert graph.has_vertex("b")
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_add_vertices(self):
        graph = DiGraph()
        graph.add_vertices(range(5))
        assert graph.number_of_vertices() == 5
        assert graph.number_of_edges() == 0

    def test_add_vertex_idempotent(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_vertex("a")
        assert graph.has_edge("a", "b")
        assert graph.number_of_vertices() == 2

    def test_from_edges(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)], capacity=2.0)
        assert graph.number_of_edges() == 2
        assert graph.capacity(1, 2) == 2.0

    def test_from_adjacency_keeps_isolated_vertices(self):
        graph = DiGraph.from_adjacency({1: [2], 2: [], 3: []})
        assert graph.number_of_vertices() == 3
        assert graph.out_degree(3) == 0

    def test_default_capacity_is_one(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        assert graph.capacity("a", "b") == 1.0

    def test_self_loop_rejected_by_default(self):
        graph = DiGraph()
        with pytest.raises(SelfLoopError):
            graph.add_edge("a", "a")

    def test_self_loop_allowed_when_requested(self):
        graph = DiGraph(allow_self_loops=True)
        graph.add_edge("a", "a")
        assert graph.has_edge("a", "a")

    def test_negative_capacity_rejected(self):
        graph = DiGraph()
        with pytest.raises(NegativeCapacityError):
            graph.add_edge("a", "b", capacity=-1.0)

    def test_parallel_edge_overwrites_capacity(self):
        graph = DiGraph()
        graph.add_edge("a", "b", capacity=1.0)
        graph.add_edge("a", "b", capacity=5.0)
        assert graph.number_of_edges() == 1
        assert graph.capacity("a", "b") == 5.0


class TestQueries:
    def test_degrees(self, figure1_graph):
        assert figure1_graph.out_degree("a") == 3
        assert figure1_graph.in_degree("a") == 0
        assert figure1_graph.in_degree("e") == 3
        assert figure1_graph.out_degree("e") == 3
        assert figure1_graph.in_degree("i") == 3

    def test_successors_predecessors(self, figure1_graph):
        assert sorted(figure1_graph.successors("a")) == ["b", "c", "d"]
        assert sorted(figure1_graph.predecessors("e")) == ["b", "c", "d"]

    def test_unknown_vertex_raises(self):
        graph = DiGraph()
        with pytest.raises(VertexNotFoundError):
            graph.successors("missing")
        with pytest.raises(VertexNotFoundError):
            graph.out_degree("missing")

    def test_capacity_of_missing_edge_raises(self):
        graph = DiGraph()
        graph.add_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            graph.capacity("b", "a")

    def test_edges_iteration(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)])
        edges = sorted(graph.edges())
        assert edges == [(1, 2, 1.0), (2, 3, 1.0)]

    def test_contains_and_iter(self):
        graph = DiGraph.from_edges([(1, 2)])
        assert 1 in graph
        assert 3 not in graph
        assert sorted(graph) == [1, 2]

    def test_min_degrees(self, figure1_graph):
        assert figure1_graph.min_out_degree() == 0  # vertex "i"
        assert figure1_graph.min_in_degree() == 0  # vertex "a"

    def test_degree_statistics(self, k4):
        stats = k4.degree_statistics()
        assert stats["min_out_degree"] == 3
        assert stats["max_in_degree"] == 3
        assert stats["mean_out_degree"] == pytest.approx(3.0)

    def test_degree_statistics_empty(self):
        stats = DiGraph().degree_statistics()
        assert stats["mean_out_degree"] == 0.0

    def test_is_complete(self, k4, ring10):
        assert k4.is_complete()
        assert not ring10.is_complete()

    def test_non_adjacent_pairs(self, diamond_graph):
        pairs = set(diamond_graph.non_adjacent_pairs())
        assert ("s", "t") in pairs
        assert ("a", "b") in pairs
        assert ("s", "a") not in pairs

    def test_symmetry_ratio(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1), (1, 3)])
        assert graph.symmetry_ratio() == pytest.approx(2 / 3)
        assert DiGraph().symmetry_ratio() == 1.0


class TestMutation:
    def test_remove_edge(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_vertex(1)

    def test_remove_missing_edge_raises(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(2, 1)

    def test_remove_vertex_removes_incident_edges(self, figure1_graph):
        figure1_graph.remove_vertex("e")
        assert not figure1_graph.has_vertex("e")
        assert figure1_graph.out_degree("b") == 0
        assert figure1_graph.in_degree("f") == 0

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            DiGraph().remove_vertex("x")

    def test_copy_is_independent(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.remove_edge("s", "a")
        assert diamond_graph.has_edge("s", "a")
        assert not clone.has_edge("s", "a")

    def test_reverse(self, diamond_graph):
        reversed_graph = diamond_graph.reverse()
        assert reversed_graph.has_edge("a", "s")
        assert not reversed_graph.has_edge("s", "a")
        assert reversed_graph.number_of_edges() == diamond_graph.number_of_edges()

    def test_to_undirected_edges_deduplicates(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1), (2, 3)])
        undirected = graph.to_undirected_edges()
        assert len(undirected) == 2
