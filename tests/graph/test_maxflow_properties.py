"""Property-based tests for the max-flow solvers.

The three solvers must agree with each other and with networkx's
``maximum_flow_value`` (used purely as an oracle) on random graphs, and the
max-flow/min-cut duality must hold.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.maxflow import max_flow, network_flow_function
from repro.graph.maxflow.dinic import dinic_on_network
from repro.graph.maxflow.residual import ResidualNetwork
from repro.graph.transform.even_transform import indexed_even_transform

ALGORITHMS = ("dinic", "edmonds_karp", "push_relabel")


@st.composite
def random_capacitated_graphs(draw):
    """Random directed graphs with integer capacities plus a (source, sink) pair."""
    n = draw(st.integers(min_value=2, max_value=9))
    density = draw(st.floats(min_value=0.15, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                graph.add_edge(i, j, capacity=rng.randint(1, 10))
    source = draw(st.integers(min_value=0, max_value=n - 1))
    sink = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != source))
    return graph, source, sink


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.vertices())
    for u, v, capacity in graph.edges():
        nx_graph.add_edge(u, v, capacity=capacity)
    return nx_graph


@settings(max_examples=60, deadline=None)
@given(random_capacitated_graphs())
def test_solvers_agree_with_networkx(case):
    graph, source, sink = case
    expected = nx.maximum_flow_value(to_networkx(graph), source, sink)
    for algorithm in ("push_relabel", "dinic", "edmonds_karp"):
        result = max_flow(graph, source, sink, algorithm=algorithm)
        assert result.value == pytest.approx(expected), algorithm


@settings(max_examples=40, deadline=None)
@given(random_capacitated_graphs())
def test_max_flow_equals_min_cut(case):
    """Max-flow/min-cut duality on the residual network after Dinic."""
    graph, source, sink = case
    network = ResidualNetwork(graph)
    value = dinic_on_network(
        network, network.index_of(source), network.index_of(sink)
    )
    reachable = {
        network.vertex_of(i)
        for i in network.min_cut_reachable(network.index_of(source))
    }
    cut_capacity = sum(
        capacity
        for u, v, capacity in graph.edges()
        if u in reachable and v not in reachable
    )
    assert value == pytest.approx(cut_capacity)


@settings(max_examples=40, deadline=None)
@given(random_capacitated_graphs())
def test_flow_bounded_by_degrees(case):
    """Flow can never exceed the total capacity leaving the source or entering the sink."""
    graph, source, sink = case
    out_capacity = sum(
        graph.capacity(source, succ) for succ in graph.successors(source)
    )
    in_capacity = sum(graph.capacity(pred, sink) for pred in graph.predecessors(sink))
    result = max_flow(graph, source, sink, algorithm="dinic")
    assert result.value <= out_capacity + 1e-9
    assert result.value <= in_capacity + 1e-9


@st.composite
def unit_digraphs_with_pair(draw):
    """Random unit-capacity digraphs plus a non-adjacent (source, target) pair."""
    n = draw(st.integers(min_value=3, max_value=9))
    density = draw(st.floats(min_value=0.2, max_value=0.7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                graph.add_edge(i, j)
    non_adjacent = [
        (v, w)
        for v in range(n)
        for w in range(n)
        if v != w and not graph.has_edge(v, w)
    ]
    if not non_adjacent:
        graph.remove_edge(0, 1)
        non_adjacent = [(0, 1)]
    pair = draw(st.sampled_from(non_adjacent))
    return graph, pair


@settings(max_examples=40, deadline=None)
@given(unit_digraphs_with_pair())
def test_all_algorithms_respect_cutoffs_identically(case):
    """On unit Even-transformed graphs, every solver returns exactly
    ``min(max flow, cutoff)`` for integer cutoffs — the contract the
    sharded minimum pass relies on for exactness."""
    graph, (source, target) = case
    transform = indexed_even_transform(graph)
    network = transform.network
    flow_source, flow_target = transform.flow_endpoint_indices(source, target)
    network.reset()
    exact = int(round(dinic_on_network(network, flow_source, flow_target)))
    for algorithm in ALGORITHMS:
        flow_fn = network_flow_function(algorithm)
        for cutoff in range(1, exact + 3):
            network.reset()
            value = int(round(
                flow_fn(network, flow_source, flow_target, cutoff=float(cutoff))
            ))
            assert value == min(exact, cutoff), (algorithm, cutoff, exact)
        # Non-positive cutoffs short-circuit identically.
        network.reset()
        assert flow_fn(network, flow_source, flow_target, cutoff=0.0) == 0.0


@settings(max_examples=40, deadline=None)
@given(random_capacitated_graphs())
def test_flow_conservation(case):
    """Net flow out of every intermediate vertex is zero (checked via Dinic arcs)."""
    graph, source, sink = case
    network = ResidualNetwork(graph)
    dinic_on_network(network, network.index_of(source), network.index_of(sink))
    net_flow = [0.0] * network.n
    for vertex_index in range(network.n):
        for arc in network.adjacency[vertex_index]:
            if arc % 2 == 0:  # forward arcs only
                flow = network.flow_on_arc(arc)
                net_flow[vertex_index] -= flow
                net_flow[network.heads[arc]] += flow
    for vertex_index in range(network.n):
        vertex = network.vertex_of(vertex_index)
        if vertex in (source, sink):
            continue
        assert net_flow[vertex_index] == pytest.approx(0.0, abs=1e-9)
