"""Unit tests for the max-flow solvers (all three algorithms)."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bidirectional_cycle,
    complete_graph,
    figure1_example_graph,
)
from repro.graph.maxflow import (
    SOLVERS,
    dinic_max_flow,
    edmonds_karp_max_flow,
    max_flow,
    push_relabel_max_flow,
)
from repro.graph.maxflow.residual import ResidualNetwork

ALGORITHMS = sorted(SOLVERS)


def classic_flow_network():
    """The CLRS example network with max flow 23 from s to t."""
    graph = DiGraph()
    edges = [
        ("s", "v1", 16), ("s", "v2", 13), ("v1", "v3", 12), ("v2", "v1", 4),
        ("v2", "v4", 14), ("v3", "v2", 9), ("v3", "t", 20), ("v4", "v3", 7),
        ("v4", "t", 4),
    ]
    for u, v, c in edges:
        graph.add_edge(u, v, capacity=c)
    return graph


class TestKnownNetworks:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_classic_clrs_network(self, algorithm):
        result = max_flow(classic_flow_network(), "s", "t", algorithm=algorithm)
        assert result.as_int() == 23
        assert result.algorithm == algorithm

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_edge(self, algorithm):
        graph = DiGraph()
        graph.add_edge("a", "b", capacity=7)
        result = max_flow(graph, "a", "b", algorithm=algorithm)
        assert result.value == pytest.approx(7.0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_disconnected_pair_has_zero_flow(self, algorithm):
        graph = DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("c", "d")
        result = max_flow(graph, "a", "d", algorithm=algorithm)
        assert result.value == 0.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_diamond_unit_capacities(self, algorithm, diamond_graph):
        result = max_flow(diamond_graph, "s", "t", algorithm=algorithm)
        assert result.as_int() == 2

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_figure1_edge_flow_is_three(self, algorithm):
        """The paper's Figure 1a: the edge max flow from a to i is 3."""
        result = max_flow(figure1_example_graph(), "a", "i", algorithm=algorithm)
        assert result.as_int() == 3

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_complete_graph_flow(self, algorithm):
        graph = complete_graph(6)
        result = max_flow(graph, 0, 5, algorithm=algorithm)
        # Direct edge (1) plus 4 two-hop paths.
        assert result.as_int() == 5

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_bidirectional_cycle_flow(self, algorithm):
        graph = bidirectional_cycle(8)
        result = max_flow(graph, 0, 4, algorithm=algorithm)
        assert result.as_int() == 2

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_serial_bottleneck(self, algorithm):
        graph = DiGraph()
        graph.add_edge("a", "b", capacity=5)
        graph.add_edge("b", "c", capacity=3)
        graph.add_edge("c", "d", capacity=4)
        result = max_flow(graph, "a", "d", algorithm=algorithm)
        assert result.value == pytest.approx(3.0)


class TestInterface:
    def test_unknown_algorithm_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="unknown max-flow algorithm"):
            max_flow(diamond_graph, "s", "t", algorithm="magic")

    def test_same_source_and_target_rejected(self, diamond_graph):
        with pytest.raises(ValueError, match="distinct"):
            max_flow(diamond_graph, "s", "s")

    def test_all_solvers_registered(self):
        assert set(SOLVERS) == {"push_relabel", "dinic", "edmonds_karp"}

    def test_direct_functions_match_dispatch(self, diamond_graph):
        assert push_relabel_max_flow(diamond_graph, "s", "t").as_int() == 2
        assert dinic_max_flow(diamond_graph, "s", "t").as_int() == 2
        assert edmonds_karp_max_flow(diamond_graph, "s", "t").as_int() == 2

    def test_dinic_cutoff_stops_early(self):
        graph = complete_graph(8)
        result = dinic_max_flow(graph, 0, 7, cutoff=3.0)
        assert 3 <= result.as_int() <= 7

    def test_edmonds_karp_reports_augmentations(self, diamond_graph):
        result = edmonds_karp_max_flow(diamond_graph, "s", "t")
        assert result.augmentations == 2


class TestResidualNetwork:
    def test_arc_pairing(self, diamond_graph):
        network = ResidualNetwork(diamond_graph)
        assert network.arc_count() == 2 * diamond_graph.number_of_edges()
        # Forward arcs carry the capacity, reverse arcs start at zero.
        assert network.caps[0] == 1.0
        assert network.caps[1] == 0.0

    def test_reset_restores_capacities(self, diamond_graph):
        network = ResidualNetwork(diamond_graph)
        from repro.graph.maxflow.dinic import dinic_on_network

        source = network.index_of("s")
        sink = network.index_of("t")
        assert dinic_on_network(network, source, sink) == pytest.approx(2.0)
        # Capacities were consumed; reset brings them back.
        network.reset()
        assert dinic_on_network(network, source, sink) == pytest.approx(2.0)

    def test_min_cut_reachable_set(self):
        graph = classic_flow_network()
        network = ResidualNetwork(graph)
        from repro.graph.maxflow.dinic import dinic_on_network

        value = dinic_on_network(
            network, network.index_of("s"), network.index_of("t")
        )
        reachable = {
            network.vertex_of(i)
            for i in network.min_cut_reachable(network.index_of("s"))
        }
        assert "s" in reachable and "t" not in reachable
        # Capacity across the cut equals the max flow (max-flow min-cut).
        cut_capacity = sum(
            capacity
            for u, v, capacity in graph.edges()
            if u in reachable and v not in reachable
        )
        assert cut_capacity == pytest.approx(value)

    def test_index_of_unknown_vertex(self, diamond_graph):
        from repro.graph.errors import VertexNotFoundError

        network = ResidualNetwork(diamond_graph)
        with pytest.raises(VertexNotFoundError):
            network.index_of("missing")
