"""Tests for the synthetic graph generators."""

import random

import pytest

from repro.graph.generators import (
    bidirectional_cycle,
    circulant_graph,
    complete_graph,
    directed_cycle,
    figure1_example_graph,
    random_digraph,
    random_regular_out_digraph,
)


class TestDeterministicGenerators:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.number_of_vertices() == 5
        assert graph.number_of_edges() == 20
        assert graph.is_complete()

    def test_directed_cycle(self):
        graph = directed_cycle(4)
        assert graph.number_of_edges() == 4
        assert graph.has_edge(3, 0)

    def test_directed_cycle_too_small(self):
        with pytest.raises(ValueError):
            directed_cycle(1)

    def test_bidirectional_cycle(self):
        graph = bidirectional_cycle(5)
        assert graph.number_of_edges() == 10
        assert graph.has_edge(0, 4) and graph.has_edge(4, 0)

    def test_circulant_degrees(self):
        graph = circulant_graph(10, [1, 2])
        for vertex in graph.vertices():
            assert graph.out_degree(vertex) == 4
            assert graph.in_degree(vertex) == 4

    def test_figure1_graph_shape(self):
        graph = figure1_example_graph()
        assert graph.number_of_vertices() == 9
        assert graph.number_of_edges() == 12


class TestRandomGenerators:
    def test_random_digraph_edge_probability_bounds(self):
        with pytest.raises(ValueError):
            random_digraph(5, 1.5)

    def test_random_digraph_extremes(self):
        rng = random.Random(1)
        assert random_digraph(6, 0.0, rng).number_of_edges() == 0
        assert random_digraph(6, 1.0, rng).is_complete()

    def test_random_digraph_reproducible(self):
        a = random_digraph(10, 0.3, random.Random(7))
        b = random_digraph(10, 0.3, random.Random(7))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_random_regular_out_degree(self):
        graph = random_regular_out_digraph(12, 4, random.Random(3))
        for vertex in graph.vertices():
            assert graph.out_degree(vertex) == 4

    def test_random_regular_out_degree_too_large(self):
        with pytest.raises(ValueError):
            random_regular_out_digraph(5, 5)
