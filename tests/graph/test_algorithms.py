"""Tests for traversal, components and path algorithms."""

import pytest

from repro.graph.algorithms.components import (
    is_strongly_connected,
    is_weakly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graph.algorithms.paths import shortest_path, vertex_disjoint_paths
from repro.graph.algorithms.traversal import (
    bfs_distances,
    bfs_order,
    dfs_order,
    is_reachable,
)
from repro.graph.digraph import DiGraph
from repro.graph.errors import VertexNotFoundError
from repro.graph.generators import (
    bidirectional_cycle,
    circulant_graph,
    complete_graph,
    directed_cycle,
)


class TestTraversal:
    def test_bfs_distances(self, figure1_graph):
        distances = bfs_distances(figure1_graph, "a")
        assert distances["a"] == 0
        assert distances["e"] == 2
        assert distances["i"] == 4

    def test_bfs_distances_unreachable_vertex_absent(self):
        graph = DiGraph.from_edges([(1, 2), (3, 4)])
        distances = bfs_distances(graph, 1)
        assert 3 not in distances

    def test_bfs_order_starts_at_source(self, figure1_graph):
        order = bfs_order(figure1_graph, "a")
        assert order[0] == "a"
        assert set(order) == set("abcdefghi")

    def test_dfs_order_visits_reachable(self, figure1_graph):
        order = dfs_order(figure1_graph, "a")
        assert set(order) == set("abcdefghi")
        assert order[0] == "a"

    def test_is_reachable(self, figure1_graph):
        assert is_reachable(figure1_graph, "a", "i")
        assert not is_reachable(figure1_graph, "i", "a")
        assert is_reachable(figure1_graph, "e", "e")

    def test_missing_source_raises(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(DiGraph(), "x")
        with pytest.raises(VertexNotFoundError):
            bfs_order(DiGraph(), "x")
        with pytest.raises(VertexNotFoundError):
            dfs_order(DiGraph(), "x")


class TestComponents:
    def test_directed_cycle_is_strongly_connected(self):
        assert is_strongly_connected(directed_cycle(6))

    def test_figure1_is_not_strongly_connected(self, figure1_graph):
        assert not is_strongly_connected(figure1_graph)
        assert is_weakly_connected(figure1_graph)

    def test_strong_components_of_two_cycles(self):
        graph = directed_cycle(3)
        for i in range(3):
            graph.add_edge(10 + i, 10 + (i + 1) % 3)
        graph.add_edge(0, 10)  # one-way bridge
        components = strongly_connected_components(graph)
        assert len(components) == 2
        sizes = sorted(len(c) for c in components)
        assert sizes == [3, 3]

    def test_weak_components(self):
        graph = DiGraph.from_edges([(1, 2), (3, 4)])
        components = weakly_connected_components(graph)
        assert len(components) == 2

    def test_empty_graph_connected_by_convention(self):
        assert is_strongly_connected(DiGraph())
        assert is_weakly_connected(DiGraph())

    def test_isolated_vertex_breaks_strong_connectivity(self):
        graph = bidirectional_cycle(4)
        graph.add_vertex(99)
        assert not is_strongly_connected(graph)

    def test_complete_graph_single_component(self):
        assert len(strongly_connected_components(complete_graph(5))) == 1


class TestShortestPath:
    def test_simple_path(self, figure1_graph):
        path = shortest_path(figure1_graph, "a", "i")
        assert path[0] == "a" and path[-1] == "i"
        assert len(path) == 5

    def test_unreachable_returns_none(self, figure1_graph):
        assert shortest_path(figure1_graph, "i", "a") is None

    def test_trivial_path(self, figure1_graph):
        assert shortest_path(figure1_graph, "a", "a") == ["a"]


class TestVertexDisjointPaths:
    def test_figure1_has_single_disjoint_path(self, figure1_graph):
        paths = vertex_disjoint_paths(figure1_graph, "a", "i")
        assert len(paths) == 1
        assert paths[0][0] == "a" and paths[0][-1] == "i"

    def test_circulant_has_four_disjoint_paths(self):
        graph = circulant_graph(12, [1, 2])
        paths = vertex_disjoint_paths(graph, 0, 6)
        assert len(paths) == 4
        # Paths must be internally vertex-disjoint.
        interior = [set(path[1:-1]) for path in paths]
        for i in range(len(interior)):
            for j in range(i + 1, len(interior)):
                assert not interior[i] & interior[j]

    def test_paths_are_valid_walks(self, ring10):
        paths = vertex_disjoint_paths(ring10, 0, 5)
        assert len(paths) == 2
        for path in paths:
            for u, v in zip(path, path[1:]):
                assert ring10.has_edge(u, v)

    def test_adjacent_pair_includes_direct_edge(self):
        graph = complete_graph(4)
        paths = vertex_disjoint_paths(graph, 0, 1)
        assert [0, 1] in paths
        assert len(paths) == 3

    def test_same_vertex_rejected(self, ring10):
        with pytest.raises(ValueError):
            vertex_disjoint_paths(ring10, 0, 0)
