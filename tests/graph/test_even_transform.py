"""Tests for Even's vertex-splitting transformation."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import figure1_example_graph
from repro.graph.maxflow import max_flow
from repro.graph.transform.even_transform import even_transform, split_names


class TestSplitNames:
    def test_string_vertices_get_primes(self):
        assert split_names("a") == ("a'", "a''")

    def test_non_string_vertices_get_tuples(self):
        assert split_names(42) == ((42, "in"), (42, "out"))

    def test_no_collisions_for_integers(self):
        names = set()
        for vertex in range(100):
            names.update(split_names(vertex))
        assert len(names) == 200


class TestTransformStructure:
    def test_vertex_and_edge_counts(self, figure1_graph):
        """D' has 2n vertices and m + n edges (paper Section 4.3)."""
        n = figure1_graph.number_of_vertices()
        m = figure1_graph.number_of_edges()
        transformed = even_transform(figure1_graph).graph
        assert transformed.number_of_vertices() == 2 * n
        assert transformed.number_of_edges() == m + n

    def test_internal_edges_have_unit_capacity(self, figure1_graph):
        transform = even_transform(figure1_graph)
        for vertex in figure1_graph.vertices():
            v_in = transform.incoming[vertex]
            v_out = transform.outgoing[vertex]
            assert transform.graph.has_edge(v_in, v_out)
            assert transform.graph.capacity(v_in, v_out) == 1.0

    def test_incoming_and_outgoing_degrees_preserved(self, figure1_graph):
        transform = even_transform(figure1_graph)
        for vertex in figure1_graph.vertices():
            v_in = transform.incoming[vertex]
            v_out = transform.outgoing[vertex]
            # v' receives all original incoming edges plus nothing else.
            assert transform.graph.in_degree(v_in) == figure1_graph.in_degree(vertex)
            # v'' emits all original outgoing edges.
            assert transform.graph.out_degree(v_out) == figure1_graph.out_degree(vertex)
            # The only edge out of v' is the internal one; the only edge into
            # v'' is the internal one.
            assert transform.graph.out_degree(v_in) == 1
            assert transform.graph.in_degree(v_out) == 1

    def test_original_edges_connect_out_to_in(self):
        graph = DiGraph.from_edges([("x", "y")])
        transform = even_transform(graph)
        assert transform.graph.has_edge("x''", "y'")

    def test_custom_internal_capacity(self):
        graph = DiGraph.from_edges([("x", "y")])
        transform = even_transform(graph, internal_capacity=3.0)
        assert transform.graph.capacity("x'", "x''") == 3.0

    def test_flow_endpoints(self, figure1_graph):
        transform = even_transform(figure1_graph)
        source, target = transform.flow_endpoints("a", "i")
        assert source == "a''"
        assert target == "i'"

    def test_original_vertices_preserved(self, figure1_graph):
        transform = even_transform(figure1_graph)
        assert transform.original_vertices() == figure1_graph.vertices()


class TestPaperFigure1:
    """The worked example of the paper's Figure 1."""

    def test_max_flow_on_original_is_three(self):
        graph = figure1_example_graph()
        assert max_flow(graph, "a", "i").as_int() == 3

    def test_max_flow_on_transformed_is_one(self):
        """After the transformation the flow equals kappa(a, i) = 1."""
        graph = figure1_example_graph()
        transform = even_transform(graph)
        source, target = transform.flow_endpoints("a", "i")
        for algorithm in ("push_relabel", "dinic", "edmonds_karp"):
            result = max_flow(transform.graph, source, target, algorithm=algorithm)
            assert result.as_int() == 1, algorithm


class TestIndexedEvenTransform:
    def test_structure_matches_classic_transform(self, figure1_graph):
        from repro.graph.transform.even_transform import indexed_even_transform

        transform = indexed_even_transform(figure1_graph)
        n = figure1_graph.number_of_vertices()
        m = figure1_graph.number_of_edges()
        assert transform.network.n == 2 * n
        # (m + n) forward arcs, each paired with a reverse arc.
        assert transform.network.arc_count() == 2 * (m + n)

    def test_flow_values_match_classic_transform(self, figure1_graph):
        from repro.graph.maxflow.dinic import dinic_on_network
        from repro.graph.maxflow.residual import ResidualNetwork
        from repro.graph.transform.even_transform import (
            even_transform,
            indexed_even_transform,
        )

        classic = even_transform(figure1_graph)
        classic_network = ResidualNetwork(classic.graph)
        indexed = indexed_even_transform(figure1_graph)
        for source, target in [("a", "i"), ("b", "h"), ("a", "e")]:
            if figure1_graph.has_edge(source, target):
                continue
            classic_network.reset()
            classic_source, classic_target = classic.flow_endpoints(source, target)
            expected = dinic_on_network(
                classic_network,
                classic_network.index_of(classic_source),
                classic_network.index_of(classic_target),
            )
            indexed.network.reset()
            flow_source, flow_target = indexed.flow_endpoint_indices(source, target)
            assert dinic_on_network(
                indexed.network, flow_source, flow_target
            ) == pytest.approx(expected)

    def test_endpoint_index_arithmetic(self, figure1_graph):
        from repro.graph.transform.even_transform import indexed_even_transform

        transform = indexed_even_transform(figure1_graph)
        for position, vertex in enumerate(transform.vertices):
            assert transform.target_index(vertex) == 2 * position
            assert transform.source_index(vertex) == 2 * position + 1

    def test_compact_round_trip_preserves_flows(self, figure1_graph):
        from repro.graph.maxflow.dinic import dinic_on_network
        from repro.graph.transform.even_transform import indexed_even_transform

        transform = indexed_even_transform(figure1_graph)
        flow_source, flow_target = transform.flow_endpoint_indices("a", "i")
        expected = dinic_on_network(transform.network, flow_source, flow_target)
        thawed = transform.compact().thaw()
        assert thawed.n == transform.network.n
        assert dinic_on_network(thawed, flow_source, flow_target) == pytest.approx(
            expected
        )
        # The thawed copy is independent: resetting one must not leak into
        # the other (the worker-side reuse pattern).
        thawed.reset()
        assert dinic_on_network(thawed, flow_source, flow_target) == pytest.approx(
            expected
        )
