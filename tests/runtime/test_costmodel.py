"""Tests for the persistent cost models behind cost-aware scheduling."""

import json

import pytest

from repro.experiments.scenarios import get_scenario
from repro.runtime import ExperimentTask, ResultCache
from repro.runtime.costmodel import (
    COSTS_FILENAME,
    MAX_OBSERVATIONS,
    CostModel,
    PairCostTracker,
    TaskCostModel,
    task_shape_key,
)


def make_task(scenario="E", profile="tiny", seed=1, **overrides):
    base = get_scenario(scenario)
    if overrides:
        base = base.with_overrides(**overrides)
    return ExperimentTask.create(scenario=base, profile=profile, seed=seed)


class TestCostModel:
    def test_observe_and_estimate(self):
        model = CostModel()
        assert model.estimate("x") is None
        model.observe("x", 2.0)
        model.observe("x", 4.0)
        assert model.estimate("x") == pytest.approx(3.0)
        assert model.observations("x") == 2
        assert len(model) == 1

    def test_negative_observations_ignored(self):
        model = CostModel()
        model.observe("x", -1.0)
        assert model.estimate("x") is None

    def test_observation_count_clamped(self):
        model = CostModel()
        for _ in range(MAX_OBSERVATIONS * 2):
            model.observe("x", 1.0)
        assert model.observations("x") == MAX_OBSERVATIONS
        # The clamp keeps the mean adaptive: a persistent change of the
        # observed cost moves the estimate measurably.
        for _ in range(MAX_OBSERVATIONS):
            model.observe("x", 3.0)
        assert model.estimate("x") > 1.5

    def test_round_trip_through_sidecar(self, tmp_path):
        path = tmp_path / "_costs.json"
        model = CostModel(path)
        model.observe("a", 1.5)
        model.observe("b", 0.25)
        model.save()
        reopened = CostModel(path)
        assert reopened.estimate("a") == pytest.approx(1.5)
        assert reopened.estimate("b") == pytest.approx(0.25)

    def test_save_without_observations_writes_nothing(self, tmp_path):
        path = tmp_path / "_costs.json"
        CostModel(path).save()
        assert not path.exists()

    def test_corrupt_sidecar_yields_empty_model(self, tmp_path):
        path = tmp_path / "_costs.json"
        path.write_text("{broken", encoding="utf-8")
        model = CostModel(path)
        assert len(model) == 0
        model.observe("x", 1.0)
        model.save()  # must overwrite the corrupt file cleanly
        assert CostModel(path).estimate("x") == pytest.approx(1.0)

    def test_wrong_shape_sidecar_yields_empty_model(self, tmp_path):
        path = tmp_path / "_costs.json"
        path.write_text(json.dumps({"entries": {"x": "nope"}}), encoding="utf-8")
        assert CostModel(path).estimate("x") is None


class TestTaskShapeKey:
    def test_coarse_dimensions_only(self):
        # Swept protocol parameters and seeds fold into one bucket ...
        assert task_shape_key(make_task(seed=1)) == task_shape_key(make_task(seed=2))
        assert task_shape_key(make_task(bucket_size=5)) == task_shape_key(
            make_task(bucket_size=30)
        )
        # ... while the cost-driving dimensions separate buckets.
        assert task_shape_key(make_task("E")) != task_shape_key(make_task("F"))  # size
        assert task_shape_key(make_task("E")) != task_shape_key(make_task("A"))  # churn
        assert task_shape_key(make_task(profile="tiny")) != task_shape_key(
            make_task(profile="smoke")
        )


class TestTaskCostModel:
    def test_for_cache_places_sidecar_outside_entry_namespace(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        model = TaskCostModel.for_cache(cache)
        model.observe_task(make_task(), 1.0)
        model.save()
        sidecar = cache.directory / COSTS_FILENAME
        assert sidecar.exists()
        assert cache.info().entries == 0  # never mistaken for an entry
        assert cache.clear() == 0
        assert sidecar.exists()  # clear() leaves the sidecar alone

    def test_cheapest_first_orders_known_then_unknown(self):
        model = TaskCostModel()
        cheap = make_task("A")     # small, 0/1 churn
        medium = make_task("E")    # small, 1/1 churn
        expensive = make_task("K")  # large
        model.observe_task(cheap, 0.1)
        model.observe_task(medium, 1.0)
        model.observe_task(expensive, 10.0)
        unknown = make_task("G")  # never observed
        tasks = [expensive, unknown, medium, cheap]
        order = model.cheapest_first(tasks)
        assert [tasks[i] for i in order] == [cheap, medium, expensive, unknown]

    def test_cheapest_first_is_stable_for_ties(self):
        model = TaskCostModel()
        tasks = [make_task("E", seed=s) for s in (1, 2, 3)]  # one shape
        model.observe_task(tasks[0], 1.0)
        assert model.cheapest_first(tasks) == [0, 1, 2]
        # An empty model degrades to pure submission order.
        assert TaskCostModel().cheapest_first(tasks) == [0, 1, 2]


class TestPairCostTracker:
    def test_tracks_per_pair_cost_by_algorithm(self):
        tracker = PairCostTracker()
        assert tracker.seconds_per_pair("dinic") is None
        tracker.observe("dinic", pairs=10, seconds=1.0)
        assert tracker.seconds_per_pair("dinic") == pytest.approx(0.1)
        assert tracker.seconds_per_pair("edmonds_karp") is None

    def test_empty_evaluations_ignored(self):
        tracker = PairCostTracker()
        tracker.observe("dinic", pairs=0, seconds=1.0)
        assert tracker.seconds_per_pair("dinic") is None
