"""Tests of the distributed executor backend and shared cache tier.

Three layers, mirroring the module's robustness model:

* frame codec — checksummed round-trips, every kind of damage surfacing
  as a retryable :class:`ConnectionError`;
* coordinator protocol — lease expiry and reassignment, first-result-wins
  dedupe, bounded-assignment escalation, exercised by scripted fake
  workers over real sockets;
* end-to-end — spawned loopback worker fleets running real campaigns,
  byte-identical to serial runs even under injected network chaos and
  mid-campaign worker kills (the acceptance scenario), degrading to
  local execution when the fleet is unrecoverable.
"""

import socket
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.experiments.persistence import trajectory_digest
from repro.experiments.scenarios import get_scenario
from repro.runtime import faults
from repro.runtime.cache import ResultCache
from repro.runtime.campaign import Campaign
from repro.runtime.distributed import (
    Coordinator,
    DistributedExecutor,
    FrameChecksumError,
    FrameProtocolError,
    RemoteCacheTier,
    RemoteTaskError,
    WORKER_LOST_EXIT_CODE,
    WorkerLostError,
    _Call,
    parse_address,
    recv_frame,
    run_worker,
    send_frame,
    serve_cache,
)
from repro.runtime.executor import EXECUTOR_BACKENDS, make_executor
from repro.runtime.resilience import RetryPolicy, is_retryable
from repro.runtime.task import ExperimentTask, execute_task

#: Fast, jitter-free policy for chaos runs (see tests/runtime/test_chaos.py).
CHAOS_POLICY = RetryPolicy(
    max_attempts=12, base_delay=0.01, max_delay=0.05, jitter=0.0
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


def tiny_tasks(bucket_sizes=(3, 5)):
    base = get_scenario("E")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="tiny",
            seed=11,
        )
        for k in bucket_sizes
    ]


def digests_of(results):
    return [trajectory_digest(result) for result in results]


def golden_digests(tasks):
    return digests_of(Campaign().run(tasks))


def _free_port() -> int:
    """A port that was just free (and is closed again by the time we use
    it — good enough to test connection refusal)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"kind": "call", "items": list(range(100)), "blob": b"x" * 4096}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_corrupted_payload_raises_checksum_error(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"kind": "ready"})
            raw = bytearray(b.recv(1 << 16))
            raw[-1] ^= 0xFF  # damage the payload, keep the header
            c, d = socket.socketpair()
            c.sendall(bytes(raw))
            with pytest.raises(FrameChecksumError):
                recv_frame(d)
            c.close()
            d.close()
        finally:
            a.close()
            b.close()

    def test_bad_magic_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"NOPE" + b"\x00" * 32)
            with pytest.raises(FrameProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_stream_raises_protocol_error(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"kind": "ready"})
            prefix = b.recv(10)  # less than a header
            c, d = socket.socketpair()
            c.sendall(prefix)
            c.close()  # EOF mid-frame
            with pytest.raises(FrameProtocolError):
                recv_frame(d)
            d.close()
        finally:
            a.close()
            b.close()

    def test_frame_errors_are_retryable_connection_errors(self):
        for error in (
            FrameChecksumError("mismatch"),
            FrameProtocolError("bad magic"),
            WorkerLostError("leases exhausted"),
        ):
            assert isinstance(error, ConnectionError)
            assert is_retryable(error)
        assert is_retryable(RemoteTaskError("remote infra", retryable=True))
        assert not is_retryable(RemoteTaskError("remote task bug"))

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_address("example.org:1") == ("example.org", 1)
        for bogus in ("localhost", ":8000", "host:port", "host:0", "host:70000"):
            with pytest.raises(ValueError):
                parse_address(bogus)


# ----------------------------------------------------------------------
# Coordinator protocol (scripted fake workers over real sockets)
# ----------------------------------------------------------------------
def _plus_one(x):
    return x + 1


def _double(x):
    return x * 2


def _identity(x):
    return x


def _connect_worker(coordinator):
    sock = socket.create_connection(coordinator.address, timeout=5.0)
    sock.settimeout(10.0)
    send_frame(sock, {"kind": "hello", "role": "worker"})
    welcome = recv_frame(sock)
    assert welcome["kind"] == "welcome"
    return sock


def _lease_call(sock):
    send_frame(sock, {"kind": "ready"})
    message = recv_frame(sock)
    assert message["kind"] == "call"
    return message


@pytest.fixture
def coordinator():
    coordinator = Coordinator(
        heartbeat_interval=0.05,
        lease_timeout=0.4,
        max_assignments=4,
        poll_interval=0.02,
    )
    coordinator.start()
    yield coordinator
    coordinator.close()


class TestCoordinator:
    def test_dispatch_and_result(self, coordinator):
        future = coordinator.submit(_plus_one, 41)
        sock = _connect_worker(coordinator)
        call = _lease_call(sock)
        value = call["fn"](call["item"])
        send_frame(sock, {"kind": "result", "call_id": call["call_id"],
                          "ok": True, "value": value})
        assert future.result(timeout=5.0) == 42
        sock.close()

    def test_worker_error_reaches_the_future(self, coordinator):
        future = coordinator.submit(_identity, None)
        sock = _connect_worker(coordinator)
        call = _lease_call(sock)
        send_frame(sock, {"kind": "result", "call_id": call["call_id"],
                          "ok": False, "error": ValueError("task bug")})
        with pytest.raises(ValueError, match="task bug"):
            future.result(timeout=5.0)
        sock.close()

    def test_dead_worker_lease_reassigned_to_survivor(self, coordinator):
        future = coordinator.submit(_double, 21)
        victim = _connect_worker(coordinator)
        leased = _lease_call(victim)
        victim.close()  # crash without a result: lease must move on
        survivor = _connect_worker(coordinator)
        call = _lease_call(survivor)  # blocks until the lease is requeued
        assert call["call_id"] == leased["call_id"]
        send_frame(survivor, {"kind": "result", "call_id": call["call_id"],
                              "ok": True, "value": call["fn"](call["item"])})
        assert future.result(timeout=5.0) == 42
        survivor.close()

    def test_silent_worker_expires_its_lease(self, coordinator):
        future = coordinator.submit(_identity, "payload")
        silent = _connect_worker(coordinator)
        _lease_call(silent)
        # No heartbeat, no result: a partitioned worker.  The lease
        # expires after lease_timeout and a live worker takes over.
        survivor = _connect_worker(coordinator)
        call = _lease_call(survivor)
        send_frame(survivor, {"kind": "result", "call_id": call["call_id"],
                              "ok": True, "value": "done"})
        assert future.result(timeout=5.0) == "done"
        silent.close()
        survivor.close()

    def test_heartbeats_keep_a_slow_lease_alive(self, coordinator):
        future = coordinator.submit(_identity, "slow")
        sock = _connect_worker(coordinator)
        call = _lease_call(sock)
        # Work for several lease lifetimes, kept alive by heartbeats.
        for _ in range(3):
            time.sleep(0.3)
            send_frame(sock, {"kind": "heartbeat"}, inject=False)
        send_frame(sock, {"kind": "result", "call_id": call["call_id"],
                          "ok": True, "value": "finished"})
        assert future.result(timeout=5.0) == "finished"
        assert not future.exception()
        sock.close()

    def test_assignment_cap_escalates_as_retryable(self):
        coordinator = Coordinator(
            heartbeat_interval=0.05, lease_timeout=0.3,
            max_assignments=1, poll_interval=0.02,
        )
        coordinator.start()
        try:
            future = coordinator.submit(_identity, None)
            doomed = _connect_worker(coordinator)
            _lease_call(doomed)
            doomed.close()
            error = future.exception(timeout=5.0)
            assert isinstance(error, WorkerLostError)
            assert is_retryable(error)
        finally:
            coordinator.close()

    def test_first_result_wins_duplicates_dropped(self):
        coordinator = Coordinator()
        call = _Call(call_id=7, fn=str, item=1)
        call.future.set_running_or_notify_cancel()
        coordinator._settle(call, {"ok": True, "value": "first"})
        coordinator._settle(call, {"ok": True, "value": "late duplicate"})
        coordinator._settle(call, {"ok": False, "error": ValueError("late")})
        assert call.future.result() == "first"

    def test_mark_broken_fails_pending_and_future_submits(self, coordinator):
        future = coordinator.submit(_identity, None)
        coordinator.mark_broken("fleet gone")
        with pytest.raises(BrokenExecutor):
            future.result(timeout=5.0)
        with pytest.raises(BrokenExecutor):
            coordinator.submit(_identity, None)

    def test_close_settles_abandoned_futures(self):
        coordinator = Coordinator()
        coordinator.start()
        future = coordinator.submit(_identity, None)
        coordinator.close()
        assert future.cancelled() or isinstance(
            future.exception(), BrokenExecutor
        )

    def test_liveness_knob_validation(self):
        with pytest.raises(ValueError):
            Coordinator(heartbeat_interval=1.0, lease_timeout=0.5)
        with pytest.raises(ValueError):
            Coordinator(max_assignments=0)
        with pytest.raises(ValueError):
            DistributedExecutor(workers=0)


class TestWorkerLoop:
    def test_reconnect_budget_exhaustion_exit_code(self, monkeypatch):
        monkeypatch.setenv(faults.WORKER_ENV_VAR, "1")
        code = run_worker(
            "127.0.0.1", _free_port(),
            reconnect_attempts=1, reconnect_delay=0.01, connect_timeout=0.2,
        )
        assert code == WORKER_LOST_EXIT_CODE


# ----------------------------------------------------------------------
# End-to-end: spawned loopback fleets
# ----------------------------------------------------------------------
def _loopback_executor(**overrides):
    options = dict(
        workers=2, heartbeat_interval=0.1, lease_timeout=1.0,
    )
    options.update(overrides)
    return DistributedExecutor(**options)


class TestDistributedCampaigns:
    def test_make_executor_backends(self):
        assert "distributed" in EXECUTOR_BACKENDS
        executor = make_executor(3, backend="distributed")
        assert isinstance(executor, DistributedExecutor)
        assert executor.worker_count == 3
        with pytest.raises(ValueError):
            make_executor(2, backend="carrier-pigeon")

    def test_matches_serial_digests(self):
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        with Campaign(executor=_loopback_executor(), batch=1) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden

    def test_network_chaos_heals_to_golden_digests(self, monkeypatch, tmp_path):
        """The acceptance scenario: a 2-worker loopback campaign under
        connection drops, frame corruption and worker crashes converges
        to byte-identical results, and the survivor cache is clean."""
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        monkeypatch.setenv(
            faults.ENV_VAR, "conn-drop@2;frame-corrupt@1;worker-crash@2"
        )
        faults.reset()
        cache = ResultCache(tmp_path / "cache")
        with Campaign(
            executor=_loopback_executor(),
            cache=cache, batch=1, retry_policy=CHAOS_POLICY,
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden
        assert cache.verify().clean

    def test_mid_campaign_worker_kill_loses_no_cached_work(self, tmp_path):
        """Killing a worker mid-campaign (SIGKILL, no goodbye) must not
        lose completed work: already-cached results stay cached, the
        victim's lease is reassigned, and the run still converges."""
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        golden = golden_digests(tasks)
        cache_dir = tmp_path / "cache"
        campaign = Campaign(
            executor=_loopback_executor(),
            cache=ResultCache(cache_dir), batch=1,
            retry_policy=CHAOS_POLICY,
        )
        killed = []

        def kill_first_worker(event):
            if event.status == "completed" and not killed:
                session = campaign._task_session._session
                session._processes[0].kill()
                killed.append(True)

        campaign.progress = kill_first_worker
        try:
            results = campaign.run(tasks)
        finally:
            campaign.close()
        assert killed, "no completion event ever fired"
        assert digests_of(results) == golden

        # Every task landed durably; a warm rerun is pure cache hits.
        rerun_cache = ResultCache(cache_dir)
        assert rerun_cache.info().entries == len(tasks)
        with Campaign(cache=rerun_cache, batch=1) as warm:
            warm_results = warm.run(tasks)
        assert digests_of(warm_results) == golden
        assert rerun_cache.stats.hits == len(tasks)

    def test_workerless_fleet_degrades_to_local_execution(self):
        """No worker ever connects: the session breaks, the campaign's
        respawn ladder reopens, and the executor hands out a local
        session instead — the run completes anyway."""
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        executor = _loopback_executor(
            spawn_workers=False, worker_wait_timeout=0.5,
        )
        with Campaign(
            executor=executor, batch=1, retry_policy=CHAOS_POLICY
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden
        assert executor.degraded


# ----------------------------------------------------------------------
# Shared cache tier
# ----------------------------------------------------------------------
@pytest.fixture
def shared_tier(tmp_path):
    """A live ``serve_cache`` thread; yields (directory, port)."""
    directory = tmp_path / "shared"
    stop = threading.Event()
    bound = {}
    ready = threading.Event()

    def _ready(address):
        bound["port"] = address[1]
        ready.set()

    thread = threading.Thread(
        target=serve_cache,
        args=(directory,),
        kwargs=dict(shard_depth=2, ready=_ready, stop=stop.is_set),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=5.0)
    yield directory, bound["port"]
    stop.set()
    thread.join(timeout=5.0)


class TestSharedCacheTier:
    def test_put_through_and_remote_hit(self, shared_tier, tmp_path):
        directory, port = shared_tier
        task = tiny_tasks(bucket_sizes=(3,))[0]
        result = execute_task(task)

        writer = ResultCache(
            tmp_path / "l1-writer", remote=RemoteCacheTier("127.0.0.1", port)
        )
        writer.put(task, result)
        assert writer.stats.remote_puts == 1
        # The serving directory sharded the entry by fingerprint prefix.
        shard = directory / task.key()[:2] / f"{task.key()}.json"
        assert shard.is_file()

        reader = ResultCache(
            tmp_path / "l1-reader", remote=RemoteCacheTier("127.0.0.1", port)
        )
        fetched = reader.get(task)
        assert fetched is not None
        assert trajectory_digest(fetched) == trajectory_digest(result)
        assert reader.stats.remote_hits == 1
        assert reader.stats.hits == 1
        # The remote hit was re-written locally: the next get is pure L1.
        again = reader.get(task)
        assert again is not None
        assert reader.stats.remote_hits == 1

    def test_corrupt_remote_entry_is_never_served(self, shared_tier, tmp_path):
        directory, port = shared_tier
        task = tiny_tasks(bucket_sizes=(3,))[0]
        result = execute_task(task)
        writer = ResultCache(
            tmp_path / "l1-writer", remote=RemoteCacheTier("127.0.0.1", port)
        )
        writer.put(task, result)
        shard = directory / task.key()[:2] / f"{task.key()}.json"
        shard.write_bytes(faults.corrupt_payload(shard.read_bytes()))

        reader = ResultCache(
            tmp_path / "l1-reader", remote=RemoteCacheTier("127.0.0.1", port)
        )
        assert reader.get(task) is None  # verified, rejected, recomputable
        assert reader.stats.remote_hits == 0
        assert reader.stats.misses == 1
        assert not shard.exists()  # quarantined server-side

    def test_dead_tier_degrades_to_local_only(self, tmp_path):
        tier = RemoteCacheTier("127.0.0.1", _free_port(), timeout=0.2)
        assert tier.get_raw("deadbeef") is None
        assert tier.put_raw("deadbeef", b"payload") is False
        cache = ResultCache(tmp_path / "l1", remote=tier)
        task = tiny_tasks(bucket_sizes=(3,))[0]
        result = execute_task(task)
        cache.put(task, result)  # must not raise
        assert cache.get(task) is not None  # local path unaffected
