"""Tests for the experiment task unit: content keys and seed derivation."""

import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.profiles import get_profile
from repro.experiments.scenarios import get_scenario
from repro.runtime import ExperimentTask, derive_seed
from repro.runtime.campaign import replication_seeds


def make_task(**overrides):
    defaults = dict(
        scenario=get_scenario("E").with_overrides(bucket_size=5),
        profile="tiny",
        seed=7,
    )
    defaults.update(overrides)
    return ExperimentTask.create(**defaults)


class TestTaskKey:
    def test_same_spec_same_key(self):
        assert make_task().key() == make_task().key()

    def test_key_depends_on_every_dimension(self):
        base = make_task()
        assert base.key() != make_task(seed=8).key()
        assert base.key() != make_task(profile="bench").key()
        assert base.key() != make_task(algorithm="edmonds_karp").key()
        assert base.key() != make_task(keep_snapshots=True).key()
        assert base.key() != make_task(
            scenario=get_scenario("E").with_overrides(bucket_size=8)
        ).key()

    def test_profile_resolution_matches_object_form(self):
        by_name = make_task(profile="tiny")
        by_object = make_task(profile=get_profile("tiny"))
        assert by_name.key() == by_object.key()

    def test_key_is_stable_across_processes(self):
        """The content hash must not depend on per-process state.

        A fresh interpreter (fresh hash randomisation, fresh import order)
        must derive the same key for the same spec — the property the
        on-disk cache relies on.
        """
        task = make_task()
        script = (
            "from repro.experiments.scenarios import get_scenario\n"
            "from repro.runtime import ExperimentTask\n"
            "task = ExperimentTask.create(\n"
            "    scenario=get_scenario('E').with_overrides(bucket_size=5),\n"
            "    profile='tiny', seed=7)\n"
            "print(task.key())\n"
        )
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        env["PYTHONHASHSEED"] = "random"
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        ).stdout.strip()
        assert output == task.key()


class TestSeedDerivation:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "replication", 0) == derive_seed(42, "replication", 0)

    def test_derive_seed_varies_with_path_and_root(self):
        seeds = {
            derive_seed(42, "replication", 0),
            derive_seed(42, "replication", 1),
            derive_seed(43, "replication", 0),
            derive_seed(42, "other", 0),
        }
        assert len(seeds) == 4

    def test_replication_seeds_grow_stably(self):
        """Growing a campaign keeps the earlier seeds (and cached runs)."""
        assert replication_seeds(42, 5) == replication_seeds(42, 8)[:5]
        assert len(set(replication_seeds(42, 8))) == 8
