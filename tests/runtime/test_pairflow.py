"""Tests for the batched parallel pair-flow engine.

The two load-bearing guarantees:

1. the engine matches the serial per-pair oracle
   (:func:`pairwise_vertex_connectivity`) pair by pair, and
2. its statistics are bit-identical for any worker count, because the
   shard/wave structure is a function of the engine parameters only.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import ConnectivityAnalyzer
from repro.core.vertex_connectivity import (
    PairFlowEvaluator,
    lowest_in_degree_vertices,
    lowest_out_degree_vertices,
    pairwise_vertex_connectivity,
    sample_non_adjacent_pairs,
)
from repro.experiments.runner import ExperimentRunner
from repro.graph.digraph import DiGraph
from repro.graph.generators import circulant_graph, random_regular_out_digraph
from repro.runtime.pairflow import PairFlowEngine, PairFlowShard, _run_shard_on


def make_random_graph(n: int, density: float, seed: int) -> DiGraph:
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                graph.add_edge(i, j)
    return graph


def non_adjacent_pairs(graph):
    return [
        (v, w)
        for v in graph.vertices()
        for w in graph.vertices()
        if v != w and not graph.has_edge(v, w)
    ]


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    density = draw(st.floats(min_value=0.2, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return make_random_graph(n, density, seed)


class TestEngineMatchesOracle:
    @settings(max_examples=25, deadline=None)
    @given(small_graphs())
    def test_values_match_pairwise_oracle(self, graph):
        """Engine values (no cutoff) equal the per-pair serial oracle."""
        pairs = non_adjacent_pairs(graph)
        if not pairs:
            return
        engine = PairFlowEngine(graph, shard_size=3, wave_width=2)
        outcome = engine.evaluate(pairs)
        expected = [pairwise_vertex_connectivity(graph, v, w) for v, w in pairs]
        assert outcome.values == expected
        assert outcome.pairs_evaluated == len(pairs)
        assert outcome.minimum == min(expected)
        assert outcome.total == sum(expected)

    @settings(max_examples=25, deadline=None)
    @given(small_graphs())
    def test_minimum_over_exact_despite_cutoffs(self, graph):
        """Sharded inherited cutoffs never change the reported minimum."""
        pairs = non_adjacent_pairs(graph)
        if not pairs:
            return
        sources = graph.vertices()
        targets = graph.vertices()
        engine = PairFlowEngine(graph, shard_size=2, wave_width=2)
        minimum, evaluated = engine.minimum_over(sources, targets)
        expected = min(
            pairwise_vertex_connectivity(graph, v, w) for v, w in pairs
        )
        assert minimum == expected
        assert 0 < evaluated <= len(pairs)

    @pytest.mark.parametrize("algorithm", ["dinic", "edmonds_karp", "push_relabel"])
    def test_algorithms_interchangeable(self, algorithm):
        graph = circulant_graph(12, [1, 2])
        pairs = non_adjacent_pairs(graph)[:20]
        outcome = PairFlowEngine(graph, algorithm=algorithm).evaluate(pairs)
        reference = PairFlowEngine(graph).evaluate(pairs)
        assert outcome.values == reference.values

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            PairFlowEngine(circulant_graph(6, [1]), algorithm="magic")

    def test_empty_pair_batch(self):
        outcome = PairFlowEngine(circulant_graph(6, [1])).evaluate([])
        assert outcome.pairs_evaluated == 0
        assert outcome.minimum is None and outcome.min_pair is None


class TestSerialParallelEquivalence:
    def test_evaluate_bit_identical_across_worker_counts(self):
        graph = random_regular_out_digraph(60, 4, random.Random(3))
        pairs = sample_non_adjacent_pairs(graph, 40, random.Random(5))
        serial = PairFlowEngine(graph, flow_jobs=1).evaluate(pairs)
        with PairFlowEngine(graph, flow_jobs=3) as engine:
            parallel = engine.evaluate(pairs)
        assert serial == parallel

    def test_minimum_pass_bit_identical_across_worker_counts(self):
        graph = random_regular_out_digraph(60, 4, random.Random(11))
        sources = lowest_out_degree_vertices(graph, 8)
        targets = lowest_in_degree_vertices(graph, 8)
        bound = min(graph.min_out_degree(), graph.min_in_degree())
        serial = PairFlowEngine(graph, flow_jobs=1).minimum_over(
            sources, targets, initial_minimum=bound
        )
        parallel = PairFlowEngine(graph, flow_jobs=3).minimum_over(
            sources, targets, initial_minimum=bound
        )
        assert serial == parallel

    def test_stop_at_zero_deterministic(self):
        # Two disconnected components: many pairs have kappa 0; the wave
        # early exit must truncate identically for any worker count.
        graph = DiGraph.from_edges(
            [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4)]
        )
        pairs = non_adjacent_pairs(graph)
        outcomes = [
            PairFlowEngine(
                graph, flow_jobs=jobs, shard_size=2, wave_width=2
            ).evaluate(pairs, use_cutoff=True, stop_at_zero=True)
            for jobs in (1, 2)
        ]
        assert outcomes[0] == outcomes[1]
        assert outcomes[0].minimum == 0
        assert outcomes[0].pairs_evaluated < len(pairs)


class TestEngineMatchesEvaluator:
    def test_average_pass_matches_evaluator(self):
        graph = circulant_graph(16, [1, 2, 3])
        pairs = sample_non_adjacent_pairs(graph, 30, random.Random(2))
        evaluator = PairFlowEvaluator(graph)
        expected = [evaluator.kappa(v, w) for v, w in pairs]
        average, evaluated = PairFlowEngine(graph).average_over(pairs)
        assert evaluated == len(pairs)
        assert average == pytest.approx(sum(expected) / len(expected))

    def test_minimum_over_matches_evaluator_minimum(self):
        graph = random_regular_out_digraph(40, 4, random.Random(17))
        sources = lowest_out_degree_vertices(graph, 6)
        targets = lowest_in_degree_vertices(graph, 6)
        bound = min(graph.min_out_degree(), graph.min_in_degree())
        evaluator_min, _ = PairFlowEvaluator(graph).minimum_over(
            sources, targets, use_cutoff=True, initial_minimum=bound
        )
        engine_min, _ = PairFlowEngine(graph).minimum_over(
            sources, targets, initial_minimum=bound
        )
        assert engine_min == evaluator_min


class TestShardSemantics:
    def test_shard_stops_locally_at_zero(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1), (3, 4), (4, 3)])
        engine = PairFlowEngine(graph)
        endpoints = engine.transform.flow_endpoint_indices
        # (1 -> 3) has no path: kappa 0; the shard must stop there.
        shard = PairFlowShard(
            pairs=(endpoints(1, 3), endpoints(2, 1), endpoints(1, 4)),
            cutoff=None,
            use_cutoff=True,
            stop_at_zero=True,
        )
        values = _run_shard_on(
            engine.transform.network, engine._flow_fn, shard
        )
        assert values == [0]

    def test_concurrently_open_serial_engines_stay_independent(self):
        # Serial sessions must not share process-global worker state: two
        # engines pinned at the same time evaluate against their own graphs.
        sparse = circulant_graph(10, [1])       # kappa 2
        dense = circulant_graph(10, [1, 2, 3])  # kappa 6
        with PairFlowEngine(sparse) as a, PairFlowEngine(dense) as b:
            assert a.evaluate([(0, 5)]).values == [2]
            assert b.evaluate([(0, 5)]).values == [6]
            assert a.evaluate([(0, 5)]).values == [2]

    def test_min_pair_is_first_canonical_minimum(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        graph.add_vertex(4)  # isolated: kappa(*, 4) = 0
        pairs = [(1, 3), (1, 4), (2, 4)]
        outcome = PairFlowEngine(graph).evaluate(pairs)
        assert outcome.minimum == 0
        assert outcome.min_pair == (1, 4)


class TestAdaptiveScheduling:
    """Cost-aware scheduling is order/grouping only: every statistic the
    engine reports upward is bit-identical with it on or off."""

    @settings(max_examples=25, deadline=None)
    @given(small_graphs())
    def test_adaptive_minimum_over_matches_canonical(self, graph):
        sources = graph.vertices()
        targets = graph.vertices()
        bound = min(graph.min_out_degree(), graph.min_in_degree())
        canonical = PairFlowEngine(graph, shard_size=2, wave_width=2).minimum_over(
            sources, targets, initial_minimum=bound
        )
        adaptive = PairFlowEngine(
            graph, shard_size=2, wave_width=2, adaptive=True
        ).minimum_over(sources, targets, initial_minimum=bound)
        assert adaptive == canonical

    def test_adaptive_zero_case_replays_canonical_truncation(self):
        # Two disconnected components: the minimum pass records zeros and
        # stop_at_zero truncates geometry-dependently; the adaptive
        # engine must fall back to the canonical schedule so even the
        # pairs_evaluated count matches bit for bit.
        graph = DiGraph.from_edges(
            [(1, 2), (2, 3), (3, 1), (4, 5), (5, 6), (6, 4)]
        )
        vertices = graph.vertices()
        canonical = PairFlowEngine(graph, shard_size=2, wave_width=2).minimum_over(
            vertices, vertices
        )
        adaptive = PairFlowEngine(
            graph, shard_size=2, wave_width=2, adaptive=True
        ).minimum_over(vertices, vertices)
        assert adaptive == canonical
        assert adaptive[0] == 0

    def test_adaptive_average_over_matches_canonical(self):
        graph = random_regular_out_digraph(40, 4, random.Random(23))
        pairs = sample_non_adjacent_pairs(graph, 30, random.Random(7))
        canonical = PairFlowEngine(graph).average_over(pairs)
        adaptive = PairFlowEngine(graph, adaptive=True).average_over(pairs)
        assert adaptive == canonical

    def test_warmed_tracker_changes_shard_size_not_results(self):
        from repro.runtime.costmodel import PairCostTracker
        from repro.runtime.pairflow import (
            ADAPTIVE_MAX_SHARD,
            ADAPTIVE_MIN_SHARD,
        )

        graph = random_regular_out_digraph(40, 4, random.Random(29))
        sources = lowest_out_degree_vertices(graph, 6)
        targets = lowest_in_degree_vertices(graph, 6)
        bound = min(graph.min_out_degree(), graph.min_in_degree())
        canonical = PairFlowEngine(graph).minimum_over(
            sources, targets, initial_minimum=bound
        )

        # Microsecond pairs drive the derived shard size to the max
        # clamp; glacial pairs to the min clamp.  Neither changes the
        # reported statistics.
        for per_pair, expected in ((1e-6, ADAPTIVE_MAX_SHARD),
                                   (10.0, ADAPTIVE_MIN_SHARD)):
            tracker = PairCostTracker()
            tracker.observe("dinic", pairs=1000, seconds=per_pair * 1000)
            engine = PairFlowEngine(graph, adaptive=True, cost_tracker=tracker)
            assert engine._adaptive_shard_size() == expected
            assert engine.minimum_over(
                sources, targets, initial_minimum=bound
            ) == canonical

    def test_cold_tracker_falls_back_to_canonical_shard_size(self):
        graph = circulant_graph(10, [1, 2])
        engine = PairFlowEngine(graph, adaptive=True, shard_size=7)
        assert engine._adaptive_shard_size() == 7

    def test_evaluations_feed_the_tracker(self):
        from repro.runtime.costmodel import PairCostTracker

        tracker = PairCostTracker()
        graph = circulant_graph(12, [1, 2])
        engine = PairFlowEngine(graph, adaptive=True, cost_tracker=tracker)
        engine.evaluate(non_adjacent_pairs(graph)[:10])
        assert tracker.seconds_per_pair("dinic") is not None

    def test_adaptive_parallel_matches_canonical_serial(self):
        graph = random_regular_out_digraph(60, 4, random.Random(31))
        sources = lowest_out_degree_vertices(graph, 8)
        targets = lowest_in_degree_vertices(graph, 8)
        bound = min(graph.min_out_degree(), graph.min_in_degree())
        canonical = PairFlowEngine(graph, flow_jobs=1).minimum_over(
            sources, targets, initial_minimum=bound
        )
        with PairFlowEngine(graph, flow_jobs=2, adaptive=True) as engine:
            adaptive = engine.minimum_over(
                sources, targets, initial_minimum=bound
            )
        assert adaptive == canonical

    def test_adaptive_analyzer_reports_identical(self):
        plain = ConnectivityAnalyzer(seed=9, flow_jobs=1)
        adaptive = ConnectivityAnalyzer(seed=9, flow_jobs=1, adaptive_shards=True)
        for seed in (41, 42, 43):
            graph = make_random_graph(12, 0.4, seed)
            a = plain.analyze_graph(graph).as_dict()
            b = adaptive.analyze_graph(graph).as_dict()
            a.pop("elapsed_seconds")
            b.pop("elapsed_seconds")
            assert a == b


class TestAnalyzerEquivalence:
    """Acceptance: parallel analyzer reports are bit-identical to serial
    on tier-1 scenario snapshots."""

    def test_flow_jobs_do_not_change_reports(self):
        from repro.experiments.scenarios import get_scenario

        result = ExperimentRunner(
            profile="tiny", seed=13, keep_snapshots=True
        ).run(get_scenario("E"))
        assert result.snapshots, "tiny run must produce snapshots"
        snapshots = result.snapshots[-2:]
        for snapshot in snapshots:
            serial = ConnectivityAnalyzer(seed=3, flow_jobs=1).analyze_snapshot(
                snapshot.routing_tables
            )
            parallel = ConnectivityAnalyzer(seed=3, flow_jobs=2).analyze_snapshot(
                snapshot.routing_tables
            )
            serial_dict = serial.as_dict()
            parallel_dict = parallel.as_dict()
            serial_dict.pop("elapsed_seconds")
            parallel_dict.pop("elapsed_seconds")
            assert serial_dict == parallel_dict


class TestPoolReuseAcrossSnapshots:
    """One worker pool serves the engines of consecutive snapshots: only
    the compact network (under a fresh epoch) travels between engines."""

    def test_external_session_shared_by_consecutive_engines(self):
        from repro.runtime.executor import ParallelExecutor

        executor = ParallelExecutor(jobs=2)
        graphs = [circulant_graph(10, [1]), circulant_graph(10, [1, 2, 3])]
        expected = [2, 6]
        session = executor.open_session()
        try:
            for graph, kappa in zip(graphs, expected):
                engine = PairFlowEngine(
                    graph, executor=executor, session=session
                )
                outcome = engine.evaluate([(0, 5), (1, 6)])
                assert outcome.values == [kappa, kappa]
        finally:
            session.close()

    def test_payload_miss_is_resent(self):
        from repro.runtime.executor import ParallelExecutor

        executor = ParallelExecutor(jobs=2)
        graph = circulant_graph(8, [1, 2])
        session = executor.open_session()
        try:
            engine = PairFlowEngine(graph, executor=executor, session=session)
            # Pretend the payload already shipped: every worker will miss
            # this engine's epoch and must be answered via the re-send path.
            engine._payload_shipped = True
            outcome = engine.evaluate([(0, 4), (1, 5), (2, 6)])
            assert outcome.values == [4, 4, 4]
        finally:
            session.close()

    def test_analyzer_reuses_one_pool_across_graphs(self):
        analyzer = ConnectivityAnalyzer(seed=5, flow_jobs=2)
        serial = ConnectivityAnalyzer(seed=5, flow_jobs=1)
        graphs = [
            make_random_graph(9, 0.5, seed)
            for seed in (21, 22, 23)
        ]
        with analyzer:
            first_session = None
            for graph in graphs:
                parallel_report = analyzer.analyze_graph(graph).as_dict()
                serial_report = serial.analyze_graph(graph).as_dict()
                parallel_report.pop("elapsed_seconds")
                serial_report.pop("elapsed_seconds")
                assert parallel_report == serial_report
                if first_session is None:
                    first_session = analyzer._flow_session
                else:
                    assert analyzer._flow_session is first_session
        assert analyzer._flow_session is None  # released on close
