"""Property tests of the resilience layer.

Two families, both hypothesis-driven:

* :class:`RetryPolicy` backoff — deterministic under a fixed seed,
  monotone non-decreasing in the attempt number, capped at ``max_delay``;
* batch bisection — for *any* batch geometry and poison position, the
  campaign driver isolates exactly the poison task (everything else
  completes and is recorded exactly once).
"""

import logging
import signal
import threading
from concurrent.futures import BrokenExecutor, Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.campaign import Campaign
from repro.runtime.resilience import (
    FAIL_FAST,
    RETRIES_ENV_VAR,
    RetryPolicy,
    ShutdownGuard,
    TaskFailureRecord,
    default_retry_policy,
    is_retryable,
)


# ----------------------------------------------------------------------
# RetryPolicy backoff properties
# ----------------------------------------------------------------------
policies = st.builds(
    RetryPolicy,
    base_delay=st.floats(min_value=0.0, max_value=1.0),
    max_delay=st.floats(min_value=1.0, max_value=10.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32),
)


class TestBackoffProperties:
    @settings(max_examples=200, deadline=None)
    @given(policy=policies, key=st.text(max_size=16),
           attempt=st.integers(min_value=1, max_value=30))
    def test_deterministic_under_fixed_seed(self, policy, key, attempt):
        rebuilt = RetryPolicy(
            base_delay=policy.base_delay, max_delay=policy.max_delay,
            jitter=policy.jitter, seed=policy.seed,
        )
        assert policy.backoff_delay(attempt, key) == rebuilt.backoff_delay(
            attempt, key
        )

    @settings(max_examples=200, deadline=None)
    @given(policy=policies, key=st.text(max_size=16))
    def test_monotone_and_capped(self, policy, key):
        schedule = policy.backoff_schedule(12, key)
        assert all(
            later >= earlier
            for earlier, later in zip(schedule, schedule[1:])
        )
        assert all(delay <= policy.max_delay for delay in schedule)
        assert all(delay >= 0.0 for delay in schedule)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32),
           attempt=st.integers(min_value=1, max_value=10))
    def test_distinct_keys_desynchronise(self, seed, attempt):
        policy = RetryPolicy(jitter=1.0, seed=seed, max_delay=1000.0)
        delays = {policy.backoff_delay(attempt, f"task-{i}") for i in range(8)}
        assert len(delays) > 1  # jitter spreads tasks apart

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_respawns=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(straggler_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(0)

    def test_fail_fast_sentinel(self):
        assert FAIL_FAST.fail_fast
        assert not RetryPolicy().fail_fast

    def test_default_policy_env_override(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV_VAR, raising=False)
        assert default_retry_policy() == RetryPolicy()
        monkeypatch.setenv(RETRIES_ENV_VAR, "12")
        assert default_retry_policy().max_attempts == 12
        assert Campaign(batch=2).retry_policy.max_attempts == 12
        for bogus in ("many", "0"):
            monkeypatch.setenv(RETRIES_ENV_VAR, bogus)
            with pytest.raises(ValueError):
                default_retry_policy()


class TestRetryClassification:
    def test_infrastructure_errors_are_retryable(self):
        assert is_retryable(BrokenExecutor("pool broke"))
        assert is_retryable(OSError("disk"))
        assert is_retryable(TimeoutError("slow"))

    def test_marked_errors_are_retryable(self):
        error = RuntimeError("injected")
        error.retryable = True
        assert is_retryable(error)

    def test_plain_task_errors_are_not(self):
        assert not is_retryable(ValueError("bad input"))
        assert not is_retryable(RuntimeError("task bug"))

    def test_wrapped_transport_errors_stay_retryable(self):
        # A remote backend wrapping a ConnectionError in its own
        # dispatch error must still be healed, not reported as poison.
        try:
            try:
                raise ConnectionResetError("link lost")
            except ConnectionResetError as inner:
                raise RuntimeError("dispatch failed") from inner
        except RuntimeError as outer:
            explicit_cause = outer
        assert is_retryable(explicit_cause)

        try:
            try:
                raise TimeoutError("slow")
            except TimeoutError:
                raise RuntimeError("cleanup failed")  # implicit __context__
        except RuntimeError as outer:
            implicit_context = outer
        assert is_retryable(implicit_context)

    def test_non_retryable_chains_stay_non_retryable(self):
        try:
            try:
                raise ValueError("bad input")
            except ValueError as inner:
                raise KeyError("missing") from inner
        except KeyError as outer:
            error = outer
        assert not is_retryable(error)

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_arbitrary_cyclic_chains_terminate_and_classify(self, data):
        """For any chain geometry — including cycles, which hand-built
        exception graphs can form — the walk terminates and returns
        whether any reachable link is retryable."""
        length = data.draw(st.integers(min_value=1, max_value=8))
        retryable_at = data.draw(
            st.one_of(st.none(), st.integers(0, length - 1))
        )
        links = data.draw(
            st.lists(
                st.sampled_from(["cause", "context"]),
                min_size=length, max_size=length,
            )
        )
        errors = [
            OSError(f"node {i}")
            if retryable_at is not None and i == retryable_at
            else RuntimeError(f"node {i}")
            for i in range(length)
        ]
        for i in range(length - 1):
            setattr(errors[i], f"__{links[i]}__", errors[i + 1])
        # Close a cycle from the tail back into the chain.
        cycle_target = data.draw(st.integers(0, length - 1))
        setattr(errors[-1], f"__{links[-1]}__", errors[cycle_target])
        assert is_retryable(errors[0]) == (retryable_at is not None)

    def test_failure_record_round_trip(self):
        record = TaskFailureRecord.from_error(
            3, "abc123", "scenario E", 2, TimeoutError("too slow")
        )
        assert record.to_dict() == {
            "index": 3,
            "key": "abc123",
            "label": "scenario E",
            "attempts": 2,
            "error_type": "TimeoutError",
            "error_message": "too slow",
            "retryable": True,
        }


# ----------------------------------------------------------------------
# Batch-bisection poison isolation
# ----------------------------------------------------------------------
class _StubTask:
    """Minimal stand-in for ExperimentTask inside the dispatch driver."""

    def __init__(self, index):
        self.index = index

    def key(self):
        return f"stub-{self.index}"

    def label(self):
        return f"stub task {self.index}"


class _ScriptedSession:
    """A task session whose batches fail whenever they contain the poison."""

    def __init__(self, poison, error_factory):
        self.poison = poison
        self.error_factory = error_factory
        self.dispatched = []

    def submit_batch(self, batch):
        pairs = list(batch)
        self.dispatched.append([index for index, _ in pairs])
        future = Future()
        future.set_running_or_notify_cancel()
        if any(index == self.poison for index, _ in pairs):
            future.set_exception(self.error_factory())
        else:
            future.set_result([(index, f"result-{index}") for index, _ in pairs])
        return future

    def close(self):
        pass


def _drive(tasks_count, poison, batch_size, error_factory, policy):
    tasks = [_StubTask(i) for i in range(tasks_count)]
    campaign = Campaign(batch=batch_size, retry_policy=policy)
    session = _ScriptedSession(poison, error_factory)
    campaign._task_session = session
    recorded, failed = {}, []
    failures = campaign._run_batched(
        tasks,
        list(range(tasks_count)),
        lambda index, result: recorded.__setitem__(index, result),
        failed.append,
    )
    return recorded, failed, failures, session


class TestBisectionIsolation:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_exactly_the_poison_task_fails(self, data):
        count = data.draw(st.integers(min_value=1, max_value=12))
        poison = data.draw(st.integers(min_value=0, max_value=count - 1))
        batch_size = data.draw(st.integers(min_value=1, max_value=12))
        recorded, failed, failures, _ = _drive(
            count, poison, batch_size,
            lambda: RuntimeError("poison"),  # non-retryable: one attempt
            RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        assert [record.index for record in failures] == [poison]
        assert failed == [poison]
        assert set(recorded) == set(range(count)) - {poison}
        assert failures[0].attempts == 1
        assert failures[0].error_type == "RuntimeError"
        assert not failures[0].retryable

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_retryable_poison_exhausts_the_attempt_budget(self, data):
        count = data.draw(st.integers(min_value=1, max_value=8))
        poison = data.draw(st.integers(min_value=0, max_value=count - 1))
        batch_size = data.draw(st.integers(min_value=1, max_value=8))
        max_attempts = data.draw(st.integers(min_value=1, max_value=4))
        recorded, failed, failures, session = _drive(
            count, poison, batch_size,
            lambda: TimeoutError("still poisoned"),
            RetryPolicy(
                max_attempts=max_attempts, base_delay=0.0, jitter=0.0
            ),
        )
        assert [record.index for record in failures] == [poison]
        assert failures[0].attempts == max_attempts
        assert set(recorded) == set(range(count)) - {poison}
        # Every singleton dispatch of the poison task is one attempt.
        singleton_poison = [
            batch for batch in session.dispatched if batch == [poison]
        ]
        assert len(singleton_poison) == max_attempts

    def test_healthy_run_returns_no_failures(self):
        recorded, failed, failures, _ = _drive(
            6, poison=-1, batch_size=2,
            error_factory=lambda: AssertionError("never raised"),
            policy=RetryPolicy(),
        )
        assert failures == [] and failed == []
        assert set(recorded) == set(range(6))


# ----------------------------------------------------------------------
# ShutdownGuard
# ----------------------------------------------------------------------
class TestShutdownGuard:
    def test_installs_and_restores_handlers(self):
        previous = signal.getsignal(signal.SIGINT)
        with ShutdownGuard() as guard:
            assert guard.installed
            assert guard.requested is None
            assert signal.getsignal(signal.SIGINT) is not previous
        assert signal.getsignal(signal.SIGINT) is previous

    def test_first_signal_sets_flag_second_sigint_raises(self):
        with ShutdownGuard() as guard:
            guard._handle(signal.SIGINT, None)
            assert guard.requested == "SIGINT"
            with pytest.raises(KeyboardInterrupt):
                guard._handle(signal.SIGINT, None)

    def test_inert_outside_the_main_thread(self):
        outcome = {}

        def body():
            with ShutdownGuard() as guard:
                outcome["installed"] = guard.installed
                outcome["requested"] = guard.requested

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert outcome == {"installed": False, "requested": None}

    def test_off_main_thread_logs_the_degradation(self, caplog):
        # The no-op must be observable: embedding code driving campaigns
        # from worker threads should find the breadcrumb in DEBUG logs
        # instead of silently losing cooperative shutdown.
        with caplog.at_level(
            logging.DEBUG, logger="repro.runtime.resilience"
        ):
            worker = threading.Thread(target=lambda: ShutdownGuard().__enter__())
            worker.start()
            worker.join()
        assert any(
            "not on the main thread" in record.message
            for record in caplog.records
        )

    def test_campaign_driven_from_a_worker_thread_completes(self):
        # Regression: Campaign.run() wraps dispatch in a ShutdownGuard;
        # off the main thread that guard must degrade, not raise the way
        # signal.signal() would.
        outcome = {}

        def body():
            recorded, failed, failures, _ = _drive(
                4, poison=-1, batch_size=2,
                error_factory=lambda: AssertionError("never raised"),
                policy=RetryPolicy(),
            )
            outcome["recorded"] = set(recorded)
            outcome["failures"] = failures

        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        assert outcome == {"recorded": {0, 1, 2, 3}, "failures": []}
