"""Executor equivalence and campaign driver tests."""

import pytest

from repro.experiments.replication import replicate_scenario
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import run_bucket_size_sweep
from repro.runtime import (
    Campaign,
    ExperimentTask,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    make_executor,
)


def tiny_tasks(seeds=(11,), bucket_sizes=(3, 5)):
    base = get_scenario("E")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="tiny",
            seed=seed,
        )
        for seed in seeds
        for k in bucket_sizes
    ]


def series_of(results):
    return [
        (
            result.series.times(),
            result.series.minimum_series(),
            result.series.average_series(),
            result.series.network_size_series(),
            result.transport_stats,
            result.joins,
            result.leaves,
        )
        for result in results
    ]


class TestExecutors:
    def test_make_executor_selects_backend(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)
        assert make_executor(4).jobs == 4

    def test_parallel_jobs_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_parallel_matches_serial(self):
        """Same seeds through both executors -> identical time series."""
        tasks = tiny_tasks()
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert series_of(serial) == series_of(parallel)

    def test_results_in_submission_order(self):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        results = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]

    def test_on_result_streams_every_completion(self):
        seen = []
        tasks = tiny_tasks()
        SerialExecutor().run_tasks(tasks, on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == list(range(len(tasks)))


class TestCampaign:
    def test_progress_events(self, tmp_path):
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"), progress=events.append
        )
        tasks = tiny_tasks()
        campaign.run(tasks)
        assert len(events) == len(tasks)
        assert all(event.status == "completed" for event in events)
        assert events[-1].completed == len(tasks)
        assert events[-1].cache_hits == 0
        assert "run" in events[0].describe()

        # Second run: everything is a cache hit, nothing executes.
        events.clear()
        campaign.run(tasks)
        assert [event.status for event in events] == ["hit"] * len(tasks)
        assert events[-1].cache_hits == len(tasks)

    def test_partial_cache_mixes_hits_and_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        Campaign(cache=cache).run(tasks[:2])
        results = Campaign(cache=cache).run(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]
        fresh = Campaign().run(tasks)
        assert series_of(results) == series_of(fresh)


class TestRewiredSweeps:
    def test_sweep_identical_across_jobs_and_cache(self, tmp_path):
        base = get_scenario("A")
        kwargs = dict(bucket_sizes=(3, 5), profile="tiny", seed=13)
        serial = run_bucket_size_sweep(base, **kwargs)
        cache = ResultCache(tmp_path / "cache")
        parallel = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(serial.values()) == series_of(parallel.values())
        assert cache.stats.misses == 2

        # Re-running the same sweep is served entirely from the cache.
        cached = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(cached.values()) == series_of(serial.values())
        assert cache.stats.hits == 2

    def test_replication_through_runtime(self, tmp_path):
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        cache = ResultCache(tmp_path / "cache")
        direct = replicate_scenario(scenario, seeds=(1, 2), profile="tiny")
        routed = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", jobs=2, cache=cache
        )
        for name in direct.statistics:
            assert routed.statistic(name).values == direct.statistic(name).values
        rerun = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", cache=cache
        )
        assert cache.stats.hits == 2
        for name in direct.statistics:
            assert rerun.statistic(name).values == direct.statistic(name).values
