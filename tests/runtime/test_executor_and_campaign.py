"""Executor equivalence and campaign driver tests."""

import multiprocessing
import os

import pytest

from repro.experiments.replication import replicate_scenario
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import run_bucket_size_sweep
from repro.runtime import (
    SCHEDULE_CHEAPEST,
    Campaign,
    ExperimentTask,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    TaskCostModel,
    make_executor,
)


def tiny_tasks(seeds=(11,), bucket_sizes=(3, 5)):
    base = get_scenario("E")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="tiny",
            seed=seed,
        )
        for seed in seeds
        for k in bucket_sizes
    ]


def series_of(results):
    return [
        (
            result.series.times(),
            result.series.minimum_series(),
            result.series.average_series(),
            result.series.network_size_series(),
            result.transport_stats,
            result.joins,
            result.leaves,
        )
        for result in results
    ]


class TestExecutors:
    def test_make_executor_selects_backend(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)
        assert make_executor(4).jobs == 4

    def test_parallel_jobs_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_make_executor_rejects_non_positive_jobs(self):
        # Historically 0 / negative silently degraded to serial execution.
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            make_executor(-3)

    def test_parallel_matches_serial(self):
        """Same seeds through both executors -> identical time series."""
        tasks = tiny_tasks()
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert series_of(serial) == series_of(parallel)

    def test_results_in_submission_order(self):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        results = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]

    def test_on_result_streams_every_completion(self):
        seen = []
        tasks = tiny_tasks()
        SerialExecutor().run_tasks(tasks, on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == list(range(len(tasks)))


def _failing_shard(_item):
    raise RuntimeError("shard failed")


def _failing_initializer():
    raise RuntimeError("initializer failed")


class TestSessionLifecycle:
    """A failing shard or worker initializer must not leak the pinned pool."""

    @staticmethod
    def _live_children():
        return {p.pid for p in multiprocessing.active_children() if p.is_alive()}

    def test_failing_shard_leaves_no_live_workers(self):
        before = self._live_children()
        original_pythonpath = os.environ.get("PYTHONPATH")
        session = ParallelExecutor(jobs=2).open_session()
        try:
            with pytest.raises(RuntimeError, match="shard failed"):
                session.map(_failing_shard, [1, 2, 3, 4])
        finally:
            session.close()
        assert self._live_children() <= before
        assert os.environ.get("PYTHONPATH") == original_pythonpath

    def test_failing_initializer_leaves_no_live_workers(self):
        from concurrent.futures.process import BrokenProcessPool

        before = self._live_children()
        original_pythonpath = os.environ.get("PYTHONPATH")
        session = ParallelExecutor(jobs=2).open_session(
            initializer=_failing_initializer
        )
        try:
            with pytest.raises(BrokenProcessPool):
                session.map(str, [1, 2])
        finally:
            session.close()
        assert self._live_children() <= before
        assert os.environ.get("PYTHONPATH") == original_pythonpath

    def test_close_is_idempotent(self):
        session = ParallelExecutor(jobs=2).open_session()
        assert session.map(str, [1]) == ["1"]
        session.close()
        session.close()

    def test_failing_shard_through_engine_releases_owned_session(self):
        # The engine opens (and must close) its own session per evaluate
        # call when none is pinned; a worker exception must not leak it.
        from repro.graph.generators import circulant_graph
        from repro.runtime.pairflow import PairFlowEngine

        before = self._live_children()
        engine = PairFlowEngine(
            circulant_graph(8, [1, 2]), flow_jobs=2, algorithm="dinic"
        )
        engine.algorithm = "does-not-exist"  # workers fail resolving it
        with pytest.raises(Exception):
            engine.evaluate([(0, 4), (1, 5)])
        assert self._live_children() <= before


class TestCampaign:
    def test_progress_events(self, tmp_path):
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"), progress=events.append
        )
        tasks = tiny_tasks()
        campaign.run(tasks)
        assert len(events) == len(tasks)
        assert all(event.status == "completed" for event in events)
        assert events[-1].completed == len(tasks)
        assert events[-1].cache_hits == 0
        assert "run" in events[0].describe()

        # Second run: everything is a cache hit, nothing executes.
        events.clear()
        campaign.run(tasks)
        assert [event.status for event in events] == ["hit"] * len(tasks)
        assert events[-1].cache_hits == len(tasks)

    def test_partial_cache_mixes_hits_and_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        Campaign(cache=cache).run(tasks[:2])
        results = Campaign(cache=cache).run(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]
        fresh = Campaign().run(tasks)
        assert series_of(results) == series_of(fresh)


class TestProgressAccounting:
    """Campaign._emit bookkeeping under mixed batches and failing callbacks."""

    def test_mixed_hit_miss_batch_counts_stay_consistent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        Campaign(cache=cache).run(tasks[:2])  # warm two of four entries

        events = []
        results = Campaign(cache=cache, progress=events.append).run(tasks)
        assert len(events) == len(tasks)
        # completed increments by exactly one per event and every event
        # carries the result of the task it reports.
        assert [event.completed for event in events] == [1, 2, 3, 4]
        assert all(event.total == len(tasks) for event in events)
        for event in events:
            assert event.result is results[event.index]
        # Hits are reported first (pre-scan order) and the hit counter
        # matches the number of hit events seen so far, then freezes.
        assert [event.status for event in events] == [
            "hit", "hit", "completed", "completed",
        ]
        assert [event.cache_hits for event in events] == [1, 2, 2, 2]
        # Every task is reported exactly once.
        assert sorted(event.index for event in events) == [0, 1, 2, 3]

    def test_raising_callback_does_not_half_report_the_batch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        seen = []

        def explode_on_second(event):
            seen.append(event)
            if len(seen) == 2:
                raise RuntimeError("observer failed")

        campaign = Campaign(cache=cache, progress=explode_on_second)
        with pytest.raises(RuntimeError, match="observer failed"):
            campaign.run(tasks)

        # The batch aborted cleanly after the failing event: the two
        # reported tasks were completed, cached *before* their events
        # fired, and reported exactly once; the third never ran.
        assert [event.completed for event in seen] == [1, 2]
        assert [event.index for event in seen] == [0, 1]
        assert cache.contains(tasks[0]) and cache.contains(tasks[1])
        assert not cache.contains(tasks[2])

        # A re-run resumes from the cache without re-reporting the
        # finished work as fresh completions.
        events = []
        results = Campaign(cache=cache, progress=events.append).run(tasks)
        assert [event.status for event in events] == [
            "hit", "hit", "completed",
        ]
        assert [event.completed for event in events] == [1, 2, 3]
        assert series_of(results) == series_of(Campaign().run(tasks))

    def test_raising_callback_on_cache_hit_loses_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        Campaign(cache=cache).run(tasks)

        def explode(event):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError):
            Campaign(cache=cache, progress=explode).run(tasks)
        # The entries the pre-scan already verified are still cached.
        assert cache.contains(tasks[0]) and cache.contains(tasks[1])


class TestCheapestSchedule:
    def test_dispatch_order_is_cheapest_first_but_results_are_not(self, tmp_path):
        base = get_scenario("E")
        expensive = ExperimentTask.create(
            scenario=get_scenario("K"), profile="tiny", seed=11
        )
        cheap = ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=3), profile="tiny", seed=11
        )
        model = TaskCostModel()
        model.observe_task(expensive, 30.0)
        model.observe_task(cheap, 0.5)

        events = []
        campaign = Campaign(
            progress=events.append,
            schedule=SCHEDULE_CHEAPEST,
            cost_model=model,
        )
        results = campaign.run([expensive, cheap])  # expensive submitted first
        # The cheap task ran (and streamed) first ...
        assert [event.index for event in events] == [1, 0]
        # ... but results stay in submission order, bit-identical to FIFO.
        assert [r.scenario.name for r in results] == ["K", "E[bucket_size=3]"]
        fifo = Campaign().run([expensive, cheap])
        assert series_of(results) == series_of(fifo)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            Campaign(schedule="fastest")

    def test_cost_model_sidecar_warms_across_campaigns(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        Campaign(cache=cache).run(tasks)  # FIFO run observes costs
        model = TaskCostModel.for_cache(cache)
        assert model.estimate_task(tasks[0]) is not None

    def test_cheapest_without_model_degrades_to_fifo(self):
        events = []
        tasks = tiny_tasks()
        Campaign(progress=events.append, schedule=SCHEDULE_CHEAPEST).run(tasks)
        assert [event.index for event in events] == list(range(len(tasks)))


class TestRewiredSweeps:
    def test_sweep_identical_across_jobs_and_cache(self, tmp_path):
        base = get_scenario("A")
        kwargs = dict(bucket_sizes=(3, 5), profile="tiny", seed=13)
        serial = run_bucket_size_sweep(base, **kwargs)
        cache = ResultCache(tmp_path / "cache")
        parallel = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(serial.values()) == series_of(parallel.values())
        assert cache.stats.misses == 2

        # Re-running the same sweep is served entirely from the cache.
        cached = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(cached.values()) == series_of(serial.values())
        assert cache.stats.hits == 2

    def test_replication_through_runtime(self, tmp_path):
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        cache = ResultCache(tmp_path / "cache")
        direct = replicate_scenario(scenario, seeds=(1, 2), profile="tiny")
        routed = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", jobs=2, cache=cache
        )
        for name in direct.statistics:
            assert routed.statistic(name).values == direct.statistic(name).values
        rerun = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", cache=cache
        )
        assert cache.stats.hits == 2
        for name in direct.statistics:
            assert rerun.statistic(name).values == direct.statistic(name).values
