"""Executor equivalence and campaign driver tests."""

import multiprocessing
import os

import pytest

from repro.experiments.replication import replicate_scenario
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import run_bucket_size_sweep
from repro.runtime import (
    FAIL_FAST,
    SCHEDULE_CHEAPEST,
    Campaign,
    CampaignTaskFailure,
    ExperimentTask,
    ParallelExecutor,
    ResultCache,
    RetryPolicy,
    SerialExecutor,
    TaskCostModel,
    make_executor,
    resolve_batch,
)


def tiny_tasks(seeds=(11,), bucket_sizes=(3, 5)):
    base = get_scenario("E")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="tiny",
            seed=seed,
        )
        for seed in seeds
        for k in bucket_sizes
    ]


def series_of(results):
    return [
        (
            result.series.times(),
            result.series.minimum_series(),
            result.series.average_series(),
            result.series.network_size_series(),
            result.transport_stats,
            result.joins,
            result.leaves,
        )
        for result in results
    ]


class TestExecutors:
    def test_make_executor_selects_backend(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)
        assert make_executor(4).jobs == 4

    def test_parallel_jobs_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)

    def test_make_executor_rejects_non_positive_jobs(self):
        # Historically 0 / negative silently degraded to serial execution.
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            make_executor(-3)

    def test_parallel_matches_serial(self):
        """Same seeds through both executors -> identical time series."""
        tasks = tiny_tasks()
        serial = SerialExecutor().run_tasks(tasks)
        parallel = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert series_of(serial) == series_of(parallel)

    def test_results_in_submission_order(self):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        results = ParallelExecutor(jobs=2).run_tasks(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]

    def test_on_result_streams_every_completion(self):
        seen = []
        tasks = tiny_tasks()
        SerialExecutor().run_tasks(tasks, on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == list(range(len(tasks)))


def _failing_shard(_item):
    raise RuntimeError("shard failed")


def _failing_initializer():
    raise RuntimeError("initializer failed")


class TestSessionLifecycle:
    """A failing shard or worker initializer must not leak the pinned pool."""

    @staticmethod
    def _live_children():
        return {p.pid for p in multiprocessing.active_children() if p.is_alive()}

    def test_failing_shard_leaves_no_live_workers(self):
        before = self._live_children()
        original_pythonpath = os.environ.get("PYTHONPATH")
        session = ParallelExecutor(jobs=2).open_session()
        try:
            with pytest.raises(RuntimeError, match="shard failed"):
                session.map(_failing_shard, [1, 2, 3, 4])
        finally:
            session.close()
        assert self._live_children() <= before
        assert os.environ.get("PYTHONPATH") == original_pythonpath

    def test_failing_initializer_leaves_no_live_workers(self):
        from concurrent.futures.process import BrokenProcessPool

        before = self._live_children()
        original_pythonpath = os.environ.get("PYTHONPATH")
        session = ParallelExecutor(jobs=2).open_session(
            initializer=_failing_initializer
        )
        try:
            with pytest.raises(BrokenProcessPool):
                session.map(str, [1, 2])
        finally:
            session.close()
        assert self._live_children() <= before
        assert os.environ.get("PYTHONPATH") == original_pythonpath

    def test_close_is_idempotent(self):
        session = ParallelExecutor(jobs=2).open_session()
        assert session.map(str, [1]) == ["1"]
        session.close()
        session.close()

    def test_failing_shard_through_engine_releases_owned_session(self):
        # The engine opens (and must close) its own session per evaluate
        # call when none is pinned; a worker exception must not leak it.
        from repro.graph.generators import circulant_graph
        from repro.runtime.pairflow import PairFlowEngine

        before = self._live_children()
        engine = PairFlowEngine(
            circulant_graph(8, [1, 2]), flow_jobs=2, algorithm="dinic"
        )
        engine.algorithm = "does-not-exist"  # workers fail resolving it
        with pytest.raises(Exception):
            engine.evaluate([(0, 4), (1, 5)])
        assert self._live_children() <= before


class TestCampaign:
    def test_progress_events(self, tmp_path):
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"), progress=events.append
        )
        tasks = tiny_tasks()
        campaign.run(tasks)
        assert len(events) == len(tasks)
        assert all(event.status == "completed" for event in events)
        assert events[-1].completed == len(tasks)
        assert events[-1].cache_hits == 0
        assert "run" in events[0].describe()

        # Second run: everything is a cache hit, nothing executes.
        events.clear()
        campaign.run(tasks)
        assert [event.status for event in events] == ["hit"] * len(tasks)
        assert events[-1].cache_hits == len(tasks)

    def test_partial_cache_mixes_hits_and_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        Campaign(cache=cache).run(tasks[:2])
        results = Campaign(cache=cache).run(tasks)
        assert [r.scenario.bucket_size for r in results] == [3, 5, 8]
        fresh = Campaign().run(tasks)
        assert series_of(results) == series_of(fresh)


class TestProgressAccounting:
    """Campaign._emit bookkeeping under mixed batches and failing callbacks."""

    def test_mixed_hit_miss_batch_counts_stay_consistent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        Campaign(cache=cache).run(tasks[:2])  # warm two of four entries

        events = []
        results = Campaign(cache=cache, progress=events.append).run(tasks)
        assert len(events) == len(tasks)
        # completed increments by exactly one per event and every event
        # carries the result of the task it reports.
        assert [event.completed for event in events] == [1, 2, 3, 4]
        assert all(event.total == len(tasks) for event in events)
        for event in events:
            assert event.result is results[event.index]
        # Hits are reported first (pre-scan order) and the hit counter
        # matches the number of hit events seen so far, then freezes.
        assert [event.status for event in events] == [
            "hit", "hit", "completed", "completed",
        ]
        assert [event.cache_hits for event in events] == [1, 2, 2, 2]
        # Every task is reported exactly once.
        assert sorted(event.index for event in events) == [0, 1, 2, 3]

    def test_raising_callback_does_not_half_report_the_batch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        seen = []

        def explode_on_second(event):
            seen.append(event)
            if len(seen) == 2:
                raise RuntimeError("observer failed")

        campaign = Campaign(cache=cache, progress=explode_on_second)
        with pytest.raises(RuntimeError, match="observer failed"):
            campaign.run(tasks)

        # The batch aborted cleanly after the failing event: the two
        # reported tasks were completed, cached *before* their events
        # fired, and reported exactly once; the third never ran.
        assert [event.completed for event in seen] == [1, 2]
        assert [event.index for event in seen] == [0, 1]
        assert cache.contains(tasks[0]) and cache.contains(tasks[1])
        assert not cache.contains(tasks[2])

        # A re-run resumes from the cache without re-reporting the
        # finished work as fresh completions.
        events = []
        results = Campaign(cache=cache, progress=events.append).run(tasks)
        assert [event.status for event in events] == [
            "hit", "hit", "completed",
        ]
        assert [event.completed for event in events] == [1, 2, 3]
        assert series_of(results) == series_of(Campaign().run(tasks))

    def test_raising_callback_on_cache_hit_loses_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        Campaign(cache=cache).run(tasks)

        def explode(event):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError):
            Campaign(cache=cache, progress=explode).run(tasks)
        # The entries the pre-scan already verified are still cached.
        assert cache.contains(tasks[0]) and cache.contains(tasks[1])


class TestCheapestSchedule:
    def test_dispatch_order_is_cheapest_first_but_results_are_not(self, tmp_path):
        base = get_scenario("E")
        expensive = ExperimentTask.create(
            scenario=get_scenario("K"), profile="tiny", seed=11
        )
        cheap = ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=3), profile="tiny", seed=11
        )
        model = TaskCostModel()
        model.observe_task(expensive, 30.0)
        model.observe_task(cheap, 0.5)

        events = []
        campaign = Campaign(
            progress=events.append,
            schedule=SCHEDULE_CHEAPEST,
            cost_model=model,
        )
        results = campaign.run([expensive, cheap])  # expensive submitted first
        # The cheap task ran (and streamed) first ...
        assert [event.index for event in events] == [1, 0]
        # ... but results stay in submission order, bit-identical to FIFO.
        assert [r.scenario.name for r in results] == ["K", "E[bucket_size=3]"]
        fifo = Campaign().run([expensive, cheap])
        assert series_of(results) == series_of(fifo)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            Campaign(schedule="fastest")

    def test_cost_model_sidecar_warms_across_campaigns(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        Campaign(cache=cache).run(tasks)  # FIFO run observes costs
        model = TaskCostModel.for_cache(cache)
        assert model.estimate_task(tasks[0]) is not None

    def test_cheapest_without_model_degrades_to_fifo(self):
        events = []
        tasks = tiny_tasks()
        Campaign(progress=events.append, schedule=SCHEDULE_CHEAPEST).run(tasks)
        assert [event.index for event in events] == list(range(len(tasks)))


class _ExplodingTask(ExperimentTask):
    """A task whose run kills its worker process outright (no exception)."""

    def run(self):
        os._exit(3)


def _exploding_task():
    return _ExplodingTask.create(
        scenario=get_scenario("E"), profile="tiny", seed=99
    )


class TestBatchPacking:
    def test_resolve_batch_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_BATCH", raising=False)
        assert resolve_batch(None) is None
        assert resolve_batch("auto") == "auto"
        assert resolve_batch("AUTO") == "auto"
        assert resolve_batch(3) == 3
        assert resolve_batch("3") == 3
        with pytest.raises(ValueError):
            resolve_batch(0)
        with pytest.raises(ValueError):
            resolve_batch("several")
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "auto")
        assert resolve_batch(None) == "auto"
        assert Campaign().batch == "auto"
        # Explicit "off" (or its aliases) wins over the environment
        # default — this keeps the campaign benchmark's baselines honest.
        assert resolve_batch("off") is None
        assert resolve_batch("none") is None
        assert resolve_batch("0") is None
        assert Campaign(batch="off").batch is None
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "off")
        assert resolve_batch(None) is None
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "2")
        assert resolve_batch(None) == 2

    def test_pack_batches_balances_known_costs(self):
        # Four distinct task *shapes* (the cost model's granularity):
        # different algorithms / scenarios so each carries its own cost.
        base = get_scenario("E")
        tasks = [
            ExperimentTask.create(
                scenario=base, profile="tiny", seed=11, algorithm=algorithm
            )
            for algorithm in ("dinic", "edmonds_karp", "push_relabel")
        ] + [
            ExperimentTask.create(
                scenario=get_scenario("A"), profile="tiny", seed=11
            )
        ]
        model = TaskCostModel()
        # Costs 10, 1, 1, 8: LPT over two batches must pair the expensive
        # tasks with cheap ones instead of chunking [10+1, 1+8].
        for task, cost in zip(tasks, (10.0, 1.0, 1.0, 8.0)):
            model.observe_task(task, cost)
        groups = model.pack_batches(tasks, 2)
        assert sorted(position for group in groups for position in group) == [
            0, 1, 2, 3,
        ]
        loads = [
            sum((10.0, 1.0, 1.0, 8.0)[position] for position in group)
            for group in groups
        ]
        assert max(loads) == 10.0  # the 10-cost task sits alone
        # Deterministic: same inputs, same packing.
        assert model.pack_batches(tasks, 2) == groups

    def test_pack_batches_without_observations_round_robins(self):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        groups = TaskCostModel().pack_batches(tasks, 2)
        assert groups == [[0, 2], [1, 3]]

    def test_pack_batches_rejects_bad_count_and_drops_empties(self):
        tasks = tiny_tasks(bucket_sizes=(3,))
        model = TaskCostModel()
        with pytest.raises(ValueError):
            model.pack_batches(tasks, 0)
        assert model.pack_batches(tasks, 4) == [[0]]
        assert model.pack_batches([], 4) == []


class TestBatchedCampaign:
    """--batch is identity-free: grouping changes, results never do."""

    def test_batched_matches_per_task_dispatch(self, tmp_path):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        reference = Campaign().run(tasks)
        for batch in ("auto", 3):
            with Campaign(
                executor=ParallelExecutor(jobs=2), batch=batch
            ) as campaign:
                results = campaign.run(tasks)
            assert series_of(results) == series_of(reference)
            assert [r.scenario.bucket_size for r in results] == [3, 5, 8, 10]

    def test_batched_progress_reports_every_task_with_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        events = []
        with Campaign(
            executor=ParallelExecutor(jobs=2),
            cache=cache,
            progress=events.append,
            batch=2,
        ) as campaign:
            results = campaign.run(tasks)
        assert sorted(event.index for event in events) == [0, 1, 2]
        assert [event.completed for event in events] == [1, 2, 3]
        for event in events:
            assert event.status == "completed"
            assert event.result is results[event.index]
        # Mixed hit/run re-run: hits stream first, the rest comes batched.
        cache_for_rerun = ResultCache(tmp_path / "cache")
        more = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        events.clear()
        with Campaign(
            executor=ParallelExecutor(jobs=2),
            cache=cache_for_rerun,
            progress=events.append,
            batch="auto",
        ) as campaign:
            rerun = campaign.run(more)
        assert [event.status for event in events] == [
            "hit", "hit", "hit", "completed",
        ]
        assert series_of(rerun[:3]) == series_of(results)

    def test_session_persists_across_runs(self):
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8, 10))
        with Campaign(
            executor=ParallelExecutor(jobs=1), batch=2
        ) as campaign:
            campaign.run(tasks[:2])
            session = campaign._task_session
            assert session is not None
            first = session.warm_state_snapshots()[0]
            campaign.run(tasks[2:])
            assert campaign._task_session is session  # same pinned pool
            second = session.warm_state_snapshots()[0]
        # Same worker process served both runs and its warm state
        # advanced — the pool (with its imports) really persisted.
        assert second["pid"] == first["pid"]
        assert second["tasks_executed"] >= first["tasks_executed"] + 2

    def test_serial_auto_batching_keeps_per_task_streaming(self):
        events = []
        tasks = tiny_tasks(bucket_sizes=(3, 5, 8))
        with Campaign(progress=events.append, batch="auto") as campaign:
            results = campaign.run(tasks)
        assert [event.index for event in events] == [0, 1, 2]
        assert series_of(results) == series_of(Campaign().run(tasks))


class TestBatchedPoolLifecycle:
    """A worker dying mid-batch must not lose finished work or leak pools."""

    @staticmethod
    def _live_children():
        return {p.pid for p in multiprocessing.active_children() if p.is_alive()}

    def test_dead_worker_fails_batch_but_keeps_completed_tasks_cached(
        self, tmp_path
    ):
        from concurrent.futures.process import BrokenProcessPool

        cache = ResultCache(tmp_path / "cache")
        good = tiny_tasks(bucket_sizes=(3, 5, 8))
        tasks = good[:2] + [_exploding_task(), good[2]]
        before = self._live_children()
        events = []
        campaign = Campaign(
            executor=ParallelExecutor(jobs=1),
            cache=cache,
            progress=events.append,
            batch=2,
            # Fail-fast: a task that kills its own process must propagate,
            # not be healed into in-process (driver-killing) re-execution.
            retry_policy=FAIL_FAST,
        )
        # Batches (dispatch order, size 2): [good0, good1] then
        # [exploding, good2].  The single worker finishes the first batch
        # before the second kills it.
        with pytest.raises(BrokenProcessPool):
            campaign.run(tasks)
        # The completed batch streamed and was cached before the death...
        assert [event.index for event in events] == [0, 1]
        assert cache.contains(good[0]) and cache.contains(good[1])
        # ... the dead batch's tasks were not half-reported or cached ...
        assert not cache.contains(tasks[2])
        assert not cache.contains(good[2])
        # ... and the broken session was unwound, leaking no processes.
        assert campaign._task_session is None
        assert self._live_children() <= before

        # A later run on the same campaign opens a fresh pool and resumes
        # from the cache: only the never-finished task executes.
        results = campaign.run(good)
        campaign.close()
        assert [event.status for event in events[2:]] == [
            "hit", "hit", "completed",
        ]
        assert series_of(results) == series_of(Campaign().run(good))
        assert self._live_children() <= before

    def test_failing_callback_unwinds_batched_session(self, tmp_path):
        before = self._live_children()
        tasks = tiny_tasks(bucket_sizes=(3, 5))

        def explode(_event):
            raise RuntimeError("observer failed")

        campaign = Campaign(
            executor=ParallelExecutor(jobs=2), progress=explode, batch=2
        )
        with pytest.raises(RuntimeError, match="observer failed"):
            campaign.run(tasks)
        assert campaign._task_session is None
        assert self._live_children() <= before

    def test_map_completed_cancels_pending_on_error(self):
        session = ParallelExecutor(jobs=1).open_session()
        try:
            with pytest.raises(RuntimeError, match="shard failed"):
                for _ in session.map_completed(
                    _failing_shard, [1, 2, 3, 4]
                ):
                    pass  # pragma: no cover - first result already raises
        finally:
            session.close()
        assert self._live_children() == set()

    def test_overlapping_sessions_restore_pythonpath_last_close(self):
        # Persistent sessions can overlap in one process (two batched
        # campaigns); the PYTHONPATH export is reference-counted, so
        # closing the first must NOT strip the path from under the still-
        # open second, and closing the last restores the true original.
        original = os.environ.get("PYTHONPATH")
        first = ParallelExecutor(jobs=1).open_session()
        second = ParallelExecutor(jobs=1).open_session()
        exported = os.environ.get("PYTHONPATH")
        assert exported is not None
        first.close()
        # Still exported for the second session (its workers spawn lazily
        # and must find the package on first submit).
        assert os.environ.get("PYTHONPATH") == exported
        assert second.map(str, [7]) == ["7"]
        second.close()
        assert os.environ.get("PYTHONPATH") == original


class _PoisonTask(ExperimentTask):
    """A task that always raises a deterministic (non-retryable) error."""

    def run(self):
        raise ValueError("deterministically bad task")


def _poison_task():
    return _PoisonTask.create(
        scenario=get_scenario("E"), profile="tiny", seed=98
    )


class TestSelfHealingCampaign:
    """The default retry policy completes around failures (PR tentpole)."""

    def test_poison_task_is_isolated_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = tiny_tasks(bucket_sizes=(3, 5, 8))
        tasks = good[:2] + [_poison_task()] + good[2:]
        events = []
        with Campaign(
            cache=cache, progress=events.append, batch=2
        ) as campaign:
            with pytest.raises(CampaignTaskFailure) as exc_info:
                campaign.run(tasks)
        failure = exc_info.value
        # Exactly the poison task is reported, with a structured record.
        assert [record.index for record in failure.failures] == [2]
        record = failure.failures[0]
        assert record.error_type == "ValueError"
        assert record.attempts == 1  # non-retryable: no budget burned
        assert not record.retryable
        assert record.key == tasks[2].key()
        # Every healthy task completed, was cached and carried results.
        for index, task in enumerate(tasks):
            if index == 2:
                assert failure.results[index] is None
                assert not cache.contains(task)
            else:
                assert failure.results[index] is not None
                assert cache.contains(task)
        statuses = {event.index: event.status for event in events}
        assert statuses[2] == "failed"
        assert all(
            statuses[index] == "completed" for index in (0, 1, 3)
        )

    def test_retryable_failures_heal_transparently(self, tmp_path):
        # An error marked retryable that stops recurring: the campaign
        # retries and the run succeeds with no exception at all.
        attempts = {"count": 0}

        class _FlakySession:
            def submit_batch(self, batch):
                from concurrent.futures import Future

                pairs = list(batch)
                future = Future()
                future.set_running_or_notify_cancel()
                attempts["count"] += 1
                if attempts["count"] == 1:
                    future.set_exception(TimeoutError("transient"))
                else:
                    future.set_result(
                        [(index, task.run()) for index, task in pairs]
                    )
                return future

            def close(self):
                pass

        tasks = tiny_tasks(bucket_sizes=(3,))
        campaign = Campaign(
            batch=1,
            retry_policy=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        campaign._task_session = _FlakySession()
        results = campaign.run(tasks)
        campaign._task_session = None  # the stub is not a real session
        assert len(results) == 1 and results[0] is not None
        assert attempts["count"] == 2  # failed once, healed on retry

    def test_respawn_ladder_degrades_to_serial(self, tmp_path):
        # A pool that breaks on every submit: the campaign respawns up to
        # the budget, then degrades to in-process serial execution and
        # still completes the run.
        from concurrent.futures import BrokenExecutor

        opened = {"count": 0}

        class _BrokenSession:
            def submit_batch(self, batch):
                raise BrokenExecutor("pool is broken")

            def close(self):
                pass

        class _BrokenExecutorBackend(SerialExecutor):
            def open_task_session(self):
                opened["count"] += 1
                return _BrokenSession()

        tasks = tiny_tasks(bucket_sizes=(3, 5))
        policy = RetryPolicy(max_respawns=2, base_delay=0.0, jitter=0.0)
        with Campaign(
            executor=_BrokenExecutorBackend(), batch=2, retry_policy=policy
        ) as campaign:
            results = campaign.run(tasks)
        assert all(result is not None for result in results)
        # First open + two respawns, then the serial fallback finished it.
        assert opened["count"] == 3
        # The degraded session was dropped so a later run starts fresh.
        assert campaign._task_session is None


class TestRewiredSweeps:
    def test_sweep_identical_across_jobs_and_cache(self, tmp_path):
        base = get_scenario("A")
        kwargs = dict(bucket_sizes=(3, 5), profile="tiny", seed=13)
        serial = run_bucket_size_sweep(base, **kwargs)
        cache = ResultCache(tmp_path / "cache")
        parallel = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(serial.values()) == series_of(parallel.values())
        assert cache.stats.misses == 2

        # Re-running the same sweep is served entirely from the cache.
        cached = run_bucket_size_sweep(base, jobs=2, cache=cache, **kwargs)
        assert series_of(cached.values()) == series_of(serial.values())
        assert cache.stats.hits == 2

    def test_replication_through_runtime(self, tmp_path):
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        cache = ResultCache(tmp_path / "cache")
        direct = replicate_scenario(scenario, seeds=(1, 2), profile="tiny")
        routed = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", jobs=2, cache=cache
        )
        for name in direct.statistics:
            assert routed.statistic(name).values == direct.statistic(name).values
        rerun = replicate_scenario(
            scenario, seeds=(1, 2), profile="tiny", cache=cache
        )
        assert cache.stats.hits == 2
        for name in direct.statistics:
            assert rerun.statistic(name).values == direct.statistic(name).values
