"""Chaos suite: fault-injected campaigns converge to fault-free results.

Every test runs the same tiny task grid twice — once clean (the golden
run) and once under an injected fault profile — and asserts the
trajectory digests are identical.  Faults may change how often work runs,
where it runs and what the cache suffers along the way; they must never
change a bit of any result.
"""

import os
import signal

import pytest

from repro.experiments.persistence import trajectory_digest
from repro.experiments.scenarios import get_scenario
from repro.runtime import faults
from repro.runtime.cache import QUARANTINE_DIRNAME, ResultCache
from repro.runtime.campaign import Campaign
from repro.runtime.executor import ParallelExecutor
from repro.runtime.resilience import CampaignInterrupted, RetryPolicy
from repro.runtime.task import ExperimentTask

#: Fast, jitter-free policy for chaos runs (healing behaviour unchanged,
#: test wall-clock bounded).  The attempt budget is generous because a
#: worker-crash profile charges attempts to whichever tasks happened to
#: be in flight when the pool broke.
CHAOS_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.01, max_delay=0.05, jitter=0.0
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


def tiny_tasks(bucket_sizes=(3, 5, 8, 10)):
    base = get_scenario("E")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="tiny",
            seed=11,
        )
        for k in bucket_sizes
    ]


def digests_of(results):
    return [trajectory_digest(result) for result in results]


def golden_digests(tasks):
    """Digests of a clean serial run (no faults, no cache)."""
    return digests_of(Campaign().run(tasks))


def _activate(monkeypatch, spec):
    monkeypatch.setenv(faults.ENV_VAR, spec)
    faults.reset()


class TestFaultedCampaignsConverge:
    def test_task_errors_heal_to_golden_digests(self, monkeypatch, tmp_path):
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        _activate(monkeypatch, "task-error@1,3")
        cache = ResultCache(tmp_path / "cache")
        with Campaign(
            cache=cache, batch=2, retry_policy=CHAOS_POLICY
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden
        assert cache.verify().clean

    def test_worker_crashes_and_corruption_heal_to_golden_digests(
        self, monkeypatch, tmp_path
    ):
        """The acceptance scenario: 2-worker batched campaign under a
        worker-crash + cache-corruption profile, byte-identical to the
        fault-free golden run."""
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        cache_dir = tmp_path / "cache"

        # Chaos run: every worker crashes on its 2nd task; the first
        # entry stored by the driver lands corrupt on disk.
        _activate(monkeypatch, "worker-crash@2;corrupt-write@1")
        with Campaign(
            executor=ParallelExecutor(jobs=2),
            cache=ResultCache(cache_dir),
            batch="auto",
            retry_policy=CHAOS_POLICY,
        ) as campaign:
            chaos_results = campaign.run(tasks)
        assert digests_of(chaos_results) == golden

        # Clean warm re-run over the survivor cache: the corrupt entry is
        # quarantined and recomputed, everything else is served as hits —
        # and the digests still match the golden run bit for bit.
        monkeypatch.delenv(faults.ENV_VAR)
        faults.reset()
        cache = ResultCache(cache_dir)
        with Campaign(
            cache=cache, batch=2, retry_policy=CHAOS_POLICY
        ) as campaign:
            warm_results = campaign.run(tasks)
        assert digests_of(warm_results) == golden
        assert cache.stats.corrupt_entries == 1
        quarantined = list((cache_dir / QUARANTINE_DIRNAME).iterdir())
        assert len(quarantined) == 1
        # After healing, the cache verifies clean end to end.
        assert cache.verify().clean
        assert cache.info().corrupt_entries == 1  # persisted for post-mortems

    def test_corrupt_read_quarantines_and_recomputes(
        self, monkeypatch, tmp_path
    ):
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        golden = golden_digests(tasks)
        cache = ResultCache(tmp_path / "cache")
        with Campaign(cache=cache, batch=2) as campaign:
            campaign.run(tasks)  # warm the cache cleanly

        _activate(monkeypatch, "corrupt-read@1")
        with Campaign(
            cache=cache, batch=2, retry_policy=CHAOS_POLICY
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden
        assert cache.stats.corrupt_entries == 1
        assert cache.stats.hits == 1  # the other entry still served

    def test_stalls_change_nothing_but_time(self, monkeypatch, tmp_path):
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        golden = golden_digests(tasks)
        _activate(monkeypatch, "stall@1=0.05")
        with Campaign(
            cache=ResultCache(tmp_path / "cache"), batch=2,
            retry_policy=CHAOS_POLICY,
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden


class TestGracefulShutdown:
    def test_sigint_mid_campaign_flushes_then_resumes_warm(self, tmp_path):
        tasks = tiny_tasks()
        golden = golden_digests(tasks)
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        events = []

        def interrupt_after_first(event):
            events.append(event)
            if len(events) == 1:
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(CampaignInterrupted) as exc_info:
            with Campaign(
                cache=cache, batch=2, progress=interrupt_after_first
            ) as campaign:
                campaign.run(tasks)
        interruption = exc_info.value
        assert interruption.signal_name == "SIGINT"
        # The first batch (2 tasks) completed and was flushed; the second
        # was never dispatched.
        assert interruption.completed == 2
        assert interruption.total == len(tasks)

        # The interrupted run's lookup stats were flushed to _meta.json
        # by the run() finally clause (cache consistency, satellite d).
        info = ResultCache(cache_dir).info()
        assert info.entries == 2
        assert info.misses >= 2  # the pre-scan misses of the first run

        # The default SIGINT handler was restored on exit.
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler

        # Warm re-run: the two flushed results come back as hits, the
        # remaining two compute fresh, digests match the golden run.
        rerun_cache = ResultCache(cache_dir)
        rerun_events = []
        with Campaign(
            cache=rerun_cache, batch=2, progress=rerun_events.append
        ) as campaign:
            results = campaign.run(tasks)
        assert digests_of(results) == golden
        assert rerun_cache.stats.hits == 2
        statuses = [event.status for event in rerun_events]
        assert statuses.count("hit") == 2
        assert statuses.count("completed") == 2

    def test_second_run_after_interrupt_uses_fresh_guard(self, tmp_path):
        # A campaign object survives an interrupt: the next run() installs
        # a fresh guard rather than seeing the stale requested flag.
        tasks = tiny_tasks(bucket_sizes=(3, 5))
        cache = ResultCache(tmp_path / "cache")

        def interrupt_first(event):
            os.kill(os.getpid(), signal.SIGINT)

        campaign = Campaign(cache=cache, batch=1, progress=interrupt_first)
        with pytest.raises(CampaignInterrupted):
            campaign.run(tasks)
        campaign.progress = None
        results = campaign.run(tasks)
        campaign.close()
        assert len(results) == 2
