"""Fault-injection harness tests: DSL, determinism, identity-freedom."""

import json
import time

import pytest

from repro.experiments.scenarios import get_scenario
from repro.runtime import faults
from repro.runtime.faults import (
    DEFAULT_STALL_SECONDS,
    ENV_VAR,
    FaultPlan,
    FaultSpecError,
    InjectedTaskError,
)
from repro.runtime.task import ExperimentTask


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    """Every test starts without an inherited plan or counters."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestSpecParsing:
    def test_occurrence_clause(self):
        plan = FaultPlan.parse("worker-crash@2")
        rule = plan.rules["worker-crash"]
        assert rule.occurrences == frozenset({2})
        assert rule.probability is None
        assert plan.seed == 0

    def test_full_grammar(self):
        plan = FaultPlan.parse(
            "worker-crash@2;task-error@1,4;stall@3=0.25;"
            "corrupt-write@p0.1;seed=7"
        )
        assert plan.rules["task-error"].occurrences == frozenset({1, 4})
        assert plan.rules["stall"].param == 0.25
        assert plan.rules["corrupt-write"].probability == 0.1
        assert plan.seed == 7

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(" task-error@1 ; ; ")
        assert set(plan.rules) == {"task-error"}

    @pytest.mark.parametrize(
        "spec",
        [
            "task-error",  # missing matcher
            "explode@1",  # unknown kind
            "task-error@0",  # occurrences are 1-based
            "task-error@x",  # not a number
            "task-error@p1.5",  # probability out of range
            "stall@1=abc",  # bad parameter
            "stall@1=-1",  # negative parameter
            "task-error@1;task-error@2",  # duplicate clause
            "seed=x",  # bad seed
        ],
    )
    def test_invalid_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)


class TestOccurrenceCounting:
    def test_nth_occurrence_fires_exactly_once(self):
        plan = FaultPlan.parse("task-error@2")
        fired = [plan.check("task-error") is not None for _ in range(4)]
        assert fired == [False, True, False, False]

    def test_unconfigured_kinds_are_not_counted(self):
        plan = FaultPlan.parse("task-error@2")
        # Stall sites are visited but carry no rule: they must not shift
        # the task-error numbering.
        assert plan.check("stall") is None
        assert plan.check("task-error") is None
        assert plan.check("task-error") is not None

    def test_probability_matcher_is_deterministic(self):
        outcomes_a = [
            FaultPlan.parse("task-error@p0.5;seed=3").check("task-error")
            is not None
            for _ in range(1)
        ]
        plan_b = FaultPlan.parse("task-error@p0.5;seed=3")
        fires_a = [
            FaultPlan.parse("task-error@p0.5;seed=3")
            .rules["task-error"]
            .fires(n, 3)
            for n in range(1, 50)
        ]
        fires_b = [plan_b.rules["task-error"].fires(n, 3) for n in range(1, 50)]
        assert fires_a == fires_b
        assert any(fires_a) and not all(fires_a)  # a real coin, same every run
        assert outcomes_a  # parsed fine

    def test_seed_changes_probability_outcomes(self):
        fires = {
            seed: tuple(
                FaultPlan.parse(f"task-error@p0.5;seed={seed}")
                .rules["task-error"]
                .fires(n, seed)
                for n in range(1, 50)
            )
            for seed in (0, 1)
        }
        assert fires[0] != fires[1]


class TestInjectionSites:
    def test_task_error_fires_in_driver_process(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "task-error@1")
        faults.reset()
        with pytest.raises(InjectedTaskError):
            faults.maybe_inject_task_fault("t")
        faults.maybe_inject_task_fault("t")  # occurrence 2: no fault

    def test_crash_faults_never_fire_in_the_driver(self, monkeypatch):
        # A worker-crash plan in the main process must be inert —
        # otherwise degrading to serial execution would kill the campaign.
        monkeypatch.setenv(ENV_VAR, "worker-crash@1")
        faults.reset()
        for _ in range(3):
            faults.maybe_inject_task_fault("t")  # would os._exit in a worker

    def test_stall_sleeps_param_seconds(self, monkeypatch):
        slept = []
        monkeypatch.setenv(ENV_VAR, "stall@1=0.01")
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.reset()
        faults.maybe_inject_task_fault("t")
        assert slept == [0.01]

    def test_stall_default_seconds(self, monkeypatch):
        slept = []
        monkeypatch.setenv(ENV_VAR, "stall@1")
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.reset()
        faults.maybe_inject_task_fault("t")
        assert slept == [DEFAULT_STALL_SECONDS]

    def test_corrupt_bytes_flips_payload(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "corrupt-write@1")
        faults.reset()
        data = b'{"ok": true}'
        corrupted = faults.maybe_corrupt_bytes(faults.KIND_CORRUPT_WRITE, data)
        assert corrupted != data and len(corrupted) == len(data)
        # Occurrence 2: untouched.
        assert faults.maybe_corrupt_bytes(faults.KIND_CORRUPT_WRITE, data) == data

    def test_corrupt_file_in_place(self, monkeypatch, tmp_path):
        target = tmp_path / "entry.json"
        target.write_bytes(b'{"ok": true}')
        monkeypatch.setenv(ENV_VAR, "corrupt-read@1")
        faults.reset()
        faults.maybe_corrupt_file(target)
        with pytest.raises(json.JSONDecodeError):
            json.loads(target.read_bytes())

    def test_no_plan_is_a_noop(self):
        assert faults.active_plan() is None
        faults.maybe_inject_task_fault("t")
        assert faults.maybe_corrupt_bytes(faults.KIND_CORRUPT_WRITE, b"x") == b"x"

    def test_malformed_env_spec_raises_at_first_site(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus@1")
        faults.reset()
        with pytest.raises(FaultSpecError):
            faults.maybe_inject_task_fault("t")


class TestIdentityFreedom:
    def test_faults_env_never_enters_task_fingerprints(self, monkeypatch):
        task = ExperimentTask.create(
            scenario=get_scenario("E"), profile="tiny", seed=7
        )
        baseline_key = task.key()
        baseline_fingerprint = task.fingerprint()
        monkeypatch.setenv(ENV_VAR, "worker-crash@2;task-error@1;seed=9")
        faults.reset()
        assert task.key() == baseline_key
        assert task.fingerprint() == baseline_fingerprint
        serialised = json.dumps(task.fingerprint())
        assert "fault" not in serialised and "retry" not in serialised


class TestNetworkFaultKinds:
    def test_network_kinds_parse(self):
        plan = FaultPlan.parse(
            "conn-drop@2;frame-corrupt@1;delay@3=0.01;partition@p0.5;seed=3"
        )
        assert set(plan.rules) == {
            "conn-drop", "frame-corrupt", "delay", "partition",
        }
        assert plan.rules["delay"].param == 0.01
        assert plan.rules["partition"].probability == 0.5

    def test_conn_drop_raises_retryable_connection_error(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "conn-drop@2")
        faults.reset()
        payload = b"frame payload"
        assert faults.maybe_inject_frame_fault(payload) == payload
        with pytest.raises(faults.InjectedConnectionError) as excinfo:
            faults.maybe_inject_frame_fault(payload)
        assert isinstance(excinfo.value, ConnectionError)
        assert excinfo.value.retryable
        # The occurrence was consumed: later frames pass untouched.
        assert faults.maybe_inject_frame_fault(payload) == payload

    def test_frame_corrupt_flips_one_payload_byte(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "frame-corrupt@1")
        faults.reset()
        payload = b"frame payload"
        mangled = faults.maybe_inject_frame_fault(payload)
        assert mangled != payload
        assert len(mangled) == len(payload)
        assert faults.maybe_inject_frame_fault(payload) == payload

    def test_delay_sleeps_param_seconds(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "delay@1=0.05")
        faults.reset()
        started = time.monotonic()
        assert faults.maybe_inject_frame_fault(b"x") == b"x"
        assert time.monotonic() - started >= 0.05

    def test_partition_sleeps_then_drops(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "partition@1=0.05")
        faults.reset()
        started = time.monotonic()
        with pytest.raises(faults.InjectedConnectionError):
            faults.maybe_inject_frame_fault(b"x")
        assert time.monotonic() - started >= 0.05

    def test_worker_env_marks_worker_process(self, monkeypatch):
        monkeypatch.delenv(faults.WORKER_ENV_VAR, raising=False)
        assert not faults.in_worker_process()
        monkeypatch.setenv(faults.WORKER_ENV_VAR, "1")
        assert faults.in_worker_process()
        monkeypatch.setenv(faults.WORKER_ENV_VAR, "0")
        assert not faults.in_worker_process()
