"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.experiments.scenarios import get_scenario
from repro.runtime import Campaign, ExperimentTask, ResultCache
from repro.runtime.executor import Executor


class ExplodingExecutor(Executor):
    """Fails the test if any task reaches the executor (cache must serve)."""

    def run_tasks(self, tasks, on_result=None):
        raise AssertionError(f"{len(tasks)} task(s) were not served from the cache")


@pytest.fixture(scope="module")
def task():
    return ExperimentTask.create(
        scenario=get_scenario("E").with_overrides(bucket_size=5),
        profile="tiny",
        seed=9,
        keep_snapshots=True,
    )


@pytest.fixture(scope="module")
def result(task):
    return task.run()


class TestResultCache:
    def test_miss_then_hit(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(task) is None
        cache.put(task, result)
        assert cache.contains(task)
        restored = cache.get(task)
        assert restored is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_result_is_faithful(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        restored = cache.get(task)
        assert restored.series.minimum_series() == result.series.minimum_series()
        assert restored.series.average_series() == result.series.average_series()
        assert restored.series.times() == result.series.times()
        assert restored.transport_stats == result.transport_stats
        assert restored.wall_seconds == result.wall_seconds
        assert restored.scenario == result.scenario
        assert restored.joins == result.joins
        assert restored.leaves == result.leaves
        assert len(restored.snapshots) == len(result.snapshots)
        assert restored.snapshots[-1].routing_tables == \
            result.snapshots[-1].routing_tables

    def test_hit_skips_all_simulation_work(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        campaign = Campaign(executor=ExplodingExecutor(), cache=cache)
        restored = campaign.run_one(task)
        assert restored.series.minimum_series() == result.series.minimum_series()
        assert cache.stats.hit_rate == 1.0

    def test_evict_and_clear(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        assert cache.info().entries == 1
        assert cache.info().total_bytes > 0
        assert cache.evict(task)
        assert not cache.evict(task)
        cache.put(task, result)
        assert cache.clear() == 1
        assert cache.info().entries == 0

    def test_corrupt_entry_is_a_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(task) is None
        assert not path.exists()

    def test_non_object_json_entry_is_a_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("[]", encoding="utf-8")
        assert cache.get(task) is None
        assert not path.exists()

    def test_fingerprint_mismatch_is_a_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["task"]["seed"] = document["task"]["seed"] + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(task) is None

    def test_cache_survives_reopening(self, task, result, tmp_path):
        ResultCache(tmp_path / "cache").put(task, result)
        reopened = ResultCache(tmp_path / "cache")
        restored = reopened.get(task)
        assert restored is not None
        assert restored.series.minimum_series() == result.series.minimum_series()
