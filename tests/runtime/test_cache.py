"""Tests for the content-addressed result cache."""

import json
import logging
import multiprocessing
import os
import time

import pytest

from repro.experiments.scenarios import get_scenario
from repro.runtime import Campaign, ExperimentTask, ResultCache
from repro.runtime.cache import CHECKSUM_FIELD, QUARANTINE_DIRNAME
from repro.runtime.executor import Executor


class ExplodingExecutor(Executor):
    """Fails the test if any task reaches the executor (cache must serve)."""

    def run_tasks(self, tasks, on_result=None):
        raise AssertionError(f"{len(tasks)} task(s) were not served from the cache")


@pytest.fixture(scope="module")
def task():
    return ExperimentTask.create(
        scenario=get_scenario("E").with_overrides(bucket_size=5),
        profile="tiny",
        seed=9,
        keep_snapshots=True,
    )


@pytest.fixture(scope="module")
def result(task):
    return task.run()


class TestResultCache:
    def test_miss_then_hit(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(task) is None
        cache.put(task, result)
        assert cache.contains(task)
        restored = cache.get(task)
        assert restored is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_result_is_faithful(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        restored = cache.get(task)
        assert restored.series.minimum_series() == result.series.minimum_series()
        assert restored.series.average_series() == result.series.average_series()
        assert restored.series.times() == result.series.times()
        assert restored.transport_stats == result.transport_stats
        assert restored.wall_seconds == result.wall_seconds
        assert restored.scenario == result.scenario
        assert restored.joins == result.joins
        assert restored.leaves == result.leaves
        assert len(restored.snapshots) == len(result.snapshots)
        assert restored.snapshots[-1].routing_tables == \
            result.snapshots[-1].routing_tables

    def test_hit_skips_all_simulation_work(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        campaign = Campaign(executor=ExplodingExecutor(), cache=cache)
        restored = campaign.run_one(task)
        assert restored.series.minimum_series() == result.series.minimum_series()
        assert cache.stats.hit_rate == 1.0

    def test_evict_and_clear(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        assert cache.info().entries == 1
        assert cache.info().total_bytes > 0
        assert cache.evict(task)
        assert not cache.evict(task)
        cache.put(task, result)
        assert cache.clear() == 1
        assert cache.info().entries == 0

    def test_corrupt_entry_is_quarantined_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(task) is None
        assert not path.exists()
        # The corrupt bytes were moved aside, not destroyed, and counted.
        quarantined = tmp_path / "cache" / QUARANTINE_DIRNAME / path.name
        assert quarantined.read_text(encoding="utf-8") == "{not json"
        assert cache.stats.corrupt_entries == 1
        assert cache.info().corrupt_entries == 1
        assert ResultCache(tmp_path / "cache").info().corrupt_entries == 1

    def test_non_object_json_entry_is_a_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("[]", encoding="utf-8")
        assert cache.get(task) is None
        assert not path.exists()

    def test_fingerprint_mismatch_is_a_miss(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["task"]["seed"] = document["task"]["seed"] + 1
        document.pop(CHECKSUM_FIELD, None)
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(task) is None

    def test_checksum_mismatch_is_quarantined_miss(
        self, task, result, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        # Flip one payload byte without touching the JSON structure: the
        # document still parses and still matches the fingerprint, so only
        # the checksum can catch it.
        document = json.loads(path.read_text(encoding="utf-8"))
        document["result"]["wall_seconds"] = (
            document["result"]["wall_seconds"] + 1.0
        )
        path.write_text(json.dumps(document), encoding="utf-8")
        assert cache.get(task) is None
        assert cache.stats.corrupt_entries == 1
        assert (tmp_path / "cache" / QUARANTINE_DIRNAME / path.name).exists()

    def test_quarantined_entry_is_recomputed_and_overwritten(
        self, task, result, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("garbage", encoding="utf-8")
        assert cache.get(task) is None  # quarantined
        cache.put(task, result)  # the campaign re-runs and overwrites
        assert cache.get(task) is not None

    def test_legacy_entry_without_checksum_still_hits(
        self, task, result, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        document = json.loads(path.read_text(encoding="utf-8"))
        document.pop(CHECKSUM_FIELD)
        path.write_text(json.dumps(document), encoding="utf-8")
        restored = cache.get(task)
        assert restored is not None
        assert cache.stats.corrupt_entries == 0

    def test_cache_survives_reopening(self, task, result, tmp_path):
        ResultCache(tmp_path / "cache").put(task, result)
        reopened = ResultCache(tmp_path / "cache")
        restored = reopened.get(task)
        assert restored is not None
        assert restored.series.minimum_series() == result.series.minimum_series()


def distinct_tasks(count):
    """Tasks with distinct content hashes (bucket size varies)."""
    return [
        ExperimentTask.create(
            scenario=get_scenario("E").with_overrides(bucket_size=4 + k),
            profile="tiny",
            seed=9,
        )
        for k in range(count)
    ]


class TestSizeCapEviction:
    def test_put_evicts_down_to_cap(self, task, result, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        entry_bytes = probe.put(task, result).stat().st_size
        tasks = distinct_tasks(4)
        cache = ResultCache(tmp_path / "cache", max_bytes=2 * entry_bytes)
        for t in tasks:
            cache.put(t, result)
        info = cache.info()
        assert info.entries <= 2
        assert info.total_bytes <= 2 * entry_bytes
        assert cache.stats.evictions >= 2
        assert info.evictions == cache.stats.evictions

    def test_lru_order_keeps_recently_used_entries(self, result, tmp_path):
        import os

        tasks = distinct_tasks(3)
        cache = ResultCache(tmp_path / "cache")
        paths = [cache.put(t, result) for t in tasks]
        # Make recency explicit (mtime granularity): oldest first, but the
        # first entry is then touched by a hit, leaving tasks[1] as LRU.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        assert cache.get(tasks[0]) is not None
        entry_bytes = paths[0].stat().st_size
        evicted = cache.prune(max_bytes=2 * entry_bytes)
        assert evicted == 1
        assert cache.contains(tasks[0])
        assert not cache.contains(tasks[1])
        assert cache.contains(tasks[2])

    def test_prune_without_cap_is_noop(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        assert cache.prune() == 0
        assert cache.info().entries == 1

    def test_prune_to_zero_empties_cache(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        assert cache.prune(max_bytes=0) == 1
        assert cache.info().entries == 0

    def test_eviction_counter_persists_across_instances(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        cache.prune(max_bytes=0)
        reopened = ResultCache(tmp_path / "cache")
        assert reopened.info().evictions == 1

    def test_meta_sidecar_not_counted_as_entry(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        cache.prune(max_bytes=0)
        assert (cache.directory / "_meta.json").exists()
        assert cache.info().entries == 0
        # clear() must also leave the sidecar alone but remove entries.
        cache.put(task, result)
        assert cache.clear() == 1

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "cache", max_bytes=-1)


class TestTouchSemantics:
    def test_prescanned_hits_survive_eviction(self, result, tmp_path):
        """contains() refreshes recency exactly like get().

        A campaign pre-scan answers "is this cached?" with contains() and
        reads the entry later; if the probe did not count as a use, a
        size-cap prune between scan and read could evict the very entry
        the scan just promised, ahead of colder ones.
        """
        import os

        tasks = distinct_tasks(3)
        cache = ResultCache(tmp_path / "cache")
        paths = [cache.put(t, result) for t in tasks]
        # Make recency explicit (mtime granularity): tasks[0] is the
        # coldest on disk, then promoted by the pre-scan probe, leaving
        # tasks[1] as the true LRU entry.
        for age, path in enumerate(paths):
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        assert cache.contains(tasks[0])
        entry_bytes = paths[0].stat().st_size
        assert cache.prune(max_bytes=2 * entry_bytes) == 1
        assert cache.get(tasks[0]) is not None  # the promised entry survived
        assert not cache.contains(tasks[1])     # the colder entry went
        assert cache.contains(tasks[2])

    def test_contains_still_false_for_missing_entry(self, task, tmp_path):
        assert not ResultCache(tmp_path / "cache").contains(task)


class TestOversizedStores:
    def test_oversized_put_is_surfaced_and_drops_only_itself(
        self, task, result, tmp_path, caplog
    ):
        """A store larger than the cap warns and never displaces entries.

        Historically the oversized entry went through the LRU prune as
        the newest file, which first evicted every *older* entry and then
        the new one — one oversized store silently emptied the cache and
        still looked like a success.
        """
        import dataclasses

        small_result = dataclasses.replace(result, snapshots=[])
        small_tasks = distinct_tasks(2)
        probe = ResultCache(tmp_path / "probe")
        small_bytes = probe.put(small_tasks[0], small_result).stat().st_size
        big_bytes = probe.put(task, result).stat().st_size

        cap = 2 * small_bytes + 2
        assert big_bytes > cap, "snapshot-bearing entry must exceed the cap"
        cache = ResultCache(tmp_path / "cache", max_bytes=cap)
        for t in small_tasks:
            cache.put(t, small_result)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
            dropped_path = cache.put(task, result)
        assert any(
            "larger than the cache cap" in record.message
            for record in caplog.records
        )
        assert not dropped_path.exists()
        assert cache.stats.stores_dropped == 1
        assert cache.stats.stores == 2  # the dropped store is not a store
        assert cache.stats.evictions == 0
        # The pre-existing entries are untouched and the counter persists.
        for t in small_tasks:
            assert cache.contains(t)
        assert cache.info().stores_dropped == 1
        assert ResultCache(tmp_path / "cache").info().stores_dropped == 1

    def test_first_store_into_tiny_cap_is_dropped_with_warning(
        self, task, result, tmp_path, caplog
    ):
        cache = ResultCache(tmp_path / "cache", max_bytes=64)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
            cache.put(task, result)
        assert any(
            "the store was dropped" in record.message
            for record in caplog.records
        )
        assert cache.info().entries == 0
        assert cache.stats.stores_dropped == 1
        assert cache.get(task) is None  # and a later lookup is an honest miss


class TestVerify:
    def test_clean_cache_verifies_ok(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(task, result)
        report = cache.verify()
        assert report.clean
        assert (report.checked, report.ok, report.corrupt) == (1, 1, 0)
        assert report.quarantined == []

    def test_verify_quarantines_corrupt_entries(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good_tasks = distinct_tasks(2)
        for t in good_tasks:
            cache.put(t, result)
        bad_path = cache.put(task, result)
        bad_path.write_text("{truncated", encoding="utf-8")
        report = cache.verify()
        assert not report.clean
        assert (report.checked, report.ok, report.corrupt) == (3, 2, 1)
        assert report.quarantined == [bad_path.name]
        assert not bad_path.exists()
        assert (tmp_path / "cache" / QUARANTINE_DIRNAME / bad_path.name).exists()
        # The good entries are untouched and a re-scan is clean.
        assert cache.verify().clean
        for t in good_tasks:
            assert cache.contains(t)

    def test_verify_no_repair_reports_without_moving(
        self, task, result, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        bad_path = cache.put(task, result)
        bad_path.write_text("{truncated", encoding="utf-8")
        report = cache.verify(repair=False)
        assert report.corrupt == 1 and report.quarantined == []
        assert bad_path.exists()  # left in place for inspection

    def test_verify_flags_legacy_entries(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        document = json.loads(path.read_text(encoding="utf-8"))
        document.pop(CHECKSUM_FIELD)
        path.write_text(json.dumps(document), encoding="utf-8")
        report = cache.verify()
        assert report.clean
        assert report.legacy == 1 and report.ok == 0

    def test_clear_removes_quarantine(self, task, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        path.write_text("bad", encoding="utf-8")
        assert cache.get(task) is None
        assert (tmp_path / "cache" / QUARANTINE_DIRNAME).is_dir()
        cache.clear()
        assert not (tmp_path / "cache" / QUARANTINE_DIRNAME).exists()


class TestStaleTmpSweep:
    def test_open_sweeps_aged_tmp_files(self, task, result, tmp_path):
        directory = tmp_path / "cache"
        ResultCache(directory).put(task, result)
        stale = [
            directory / "deadbeef.1234.tmp",
            directory / "_meta.5678.metatmp",
            directory / "_costs.9012.coststmp",
        ]
        old = time.time() - 7200
        for path in stale:
            path.write_text("debris", encoding="utf-8")
            os.utime(path, (old, old))
        fresh = directory / "cafef00d.4321.tmp"
        fresh.write_text("live writer", encoding="utf-8")

        cache = ResultCache(directory)  # open triggers the sweep
        for path in stale:
            assert not path.exists()
        assert fresh.exists()  # age-gated: a live writer's file survives
        assert cache.info().entries == 1  # entries never swept

    def test_open_without_directory_is_fine(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.info().entries == 0
        assert not (tmp_path / "never-created").exists()


# ----------------------------------------------------------------------
# Sharded layout (shared-tier placement knob)
# ----------------------------------------------------------------------
class TestSharding:
    def test_shard_depth_validation(self, tmp_path):
        for bogus in (-1, 9):
            with pytest.raises(ValueError):
                ResultCache(tmp_path / "cache", shard_depth=bogus)

    def test_sharded_writes_and_flat_fallback_reads(
        self, task, result, tmp_path
    ):
        directory = tmp_path / "cache"
        flat_path = ResultCache(directory).put(task, result)
        assert flat_path.parent == directory

        # A sharded instance still serves the pre-sharding flat entry...
        sharded = ResultCache(directory, shard_depth=2)
        assert sharded.get(task) is not None

        # ...and writes new entries under the fingerprint-prefix subdir.
        sharded.evict(task)
        assert not flat_path.exists()
        shard_path = sharded.put(task, result)
        assert shard_path.parent == directory / task.key()[:2]
        assert sharded.get(task) is not None

        # A flat instance reads the sharded entry via the fallback too.
        assert ResultCache(directory).get(task) is not None

    def test_maintenance_sees_every_depth(self, task, result, tmp_path):
        directory = tmp_path / "cache"
        tasks = distinct_tasks(2)
        ResultCache(directory).put(tasks[0], result)
        ResultCache(directory, shard_depth=1).put(tasks[1], result)
        cache = ResultCache(directory)
        assert cache.info().entries == 2
        report = cache.verify()
        assert report.clean and report.checked == 2
        assert cache.clear() == 2
        assert ResultCache(directory).info().entries == 0


# ----------------------------------------------------------------------
# Raw-bytes access (the serving side of the shared tier)
# ----------------------------------------------------------------------
class TestRawAccess:
    def test_raw_round_trip_across_layouts(self, task, result, tmp_path):
        source = ResultCache(tmp_path / "source")
        source.put(task, result)
        raw = source.get_raw(task.key())
        assert raw is not None
        assert source.stats.bytes_served == len(raw)

        mirror = ResultCache(tmp_path / "mirror", shard_depth=1)
        assert mirror.put_raw(task.key(), raw)
        assert mirror.get(task) is not None

    def test_put_raw_rejects_damage_and_key_mismatch(
        self, task, result, tmp_path
    ):
        source = ResultCache(tmp_path / "source")
        source.put(task, result)
        raw = source.get_raw(task.key())

        sink = ResultCache(tmp_path / "sink")
        corrupted = bytearray(raw)
        corrupted[len(corrupted) // 2] ^= 0x01
        assert not sink.put_raw(task.key(), bytes(corrupted))
        assert sink.stats.corrupt_entries == 1
        # A valid entry stored under the wrong key must not overwrite it.
        assert not sink.put_raw("0" * 64, raw)
        assert sink.info().entries == 0

    def test_get_raw_never_serves_corrupt_or_legacy(
        self, task, result, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put(task, result)
        document = json.loads(path.read_text(encoding="utf-8"))
        document.pop(CHECKSUM_FIELD)
        path.write_text(json.dumps(document), encoding="utf-8")
        # Legacy entries hit locally (backward compatibility) but are
        # never handed to remote peers, who cannot re-verify them.
        assert cache.get(task) is not None
        assert cache.get_raw(task.key()) is None

        path.write_text("{torn", encoding="utf-8")
        assert cache.get_raw(task.key()) is None
        assert not path.exists()  # quarantined
        assert cache.stats.corrupt_entries == 1


# ----------------------------------------------------------------------
# Concurrent writers (lock-free shared directories)
# ----------------------------------------------------------------------
def _racing_put(directory, task, result, barrier):
    cache = ResultCache(directory)
    barrier.wait()  # maximise overlap: both processes rename together
    cache.put(task, result)
    cache.sync_persistent_stats()


class TestConcurrentWriters:
    def test_simultaneous_puts_of_one_fingerprint(
        self, task, result, tmp_path
    ):
        directory = tmp_path / "cache"
        context = multiprocessing.get_context()
        barrier = context.Barrier(2)
        writers = [
            context.Process(
                target=_racing_put, args=(directory, task, result, barrier)
            )
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120)
        assert [writer.exitcode for writer in writers] == [0, 0]

        # Atomic rename means the survivor is one intact entry — never a
        # torn interleaving — with no temp debris left behind.
        cache = ResultCache(directory)
        assert cache.verify().clean
        assert cache.info().entries == 1
        assert not list(directory.glob("*.tmp"))
        restored = cache.get(task)
        assert restored is not None
        assert restored.series.minimum_series() == result.series.minimum_series()
        assert cache.info().corrupt_entries == 0
