"""CLI-level acceptance tests for --jobs / --cache-dir / cache subcommand.

Mirrors the acceptance criterion of the runtime subsystem: a parallel sweep
produces stdout identical to a serial one, and a second run against the same
cache directory is served entirely from the cache (100% hit rate) without
any simulation work.
"""

import pytest

from repro.cli import main


def run_cli(capsys, argv):
    assert main(argv) == 0
    captured = capsys.readouterr()
    return captured.out, captured.err


SWEEP_ARGV = [
    "sweep-k", "--scenario", "A", "--profile", "tiny", "--seed", "3",
    "--k", "3", "5",
]


class TestSweepAcceptance:
    def test_parallel_output_identical_to_serial(self, capsys):
        serial_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "1"])
        parallel_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "4"])
        assert parallel_out == serial_out
        assert "bucket-size sweep" in serial_out

    def test_second_run_is_all_cache_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first_out, first_err = run_cli(
            capsys, SWEEP_ARGV + ["--jobs", "1", "--cache-dir", cache_dir]
        )
        assert "0 hits, 2 misses" in first_err

        second_out, second_err = run_cli(
            capsys, SWEEP_ARGV + ["--jobs", "4", "--cache-dir", cache_dir]
        )
        assert second_out == first_out
        assert "2 hits, 0 misses" in second_err
        assert "100% hit rate" in second_err

    def test_cache_info_reports_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(capsys, SWEEP_ARGV + ["--cache-dir", cache_dir])
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "entries:         2" in info_out
        clear_out, _ = run_cli(capsys, ["cache", "clear", "--cache-dir", cache_dir])
        assert "removed 2 cache entries" in clear_out
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "entries:         0" in info_out


class TestRunCommandCache:
    def test_run_uses_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "E", "--profile", "tiny", "--bucket-size", "5",
                "--seed", "1", "--cache-dir", cache_dir]
        first_out, first_err = run_cli(capsys, argv)
        assert "0 hits, 1 misses" in first_err
        second_out, second_err = run_cli(capsys, argv)
        assert second_out == first_out
        assert "1 hits, 0 misses" in second_err

    def test_progress_flag_streams_to_stderr(self, capsys):
        argv = ["run", "E", "--profile", "tiny", "--bucket-size", "3",
                "--seed", "1", "--progress"]
        out, err = run_cli(capsys, argv)
        assert "[1/1]" in err
        assert "[1/1]" not in out
