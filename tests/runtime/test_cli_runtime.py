"""CLI-level acceptance tests for --jobs / --cache-dir / cache subcommand.

Mirrors the acceptance criterion of the runtime subsystem: a parallel sweep
produces stdout identical to a serial one, and a second run against the same
cache directory is served entirely from the cache (100% hit rate) without
any simulation work.
"""

import json

import pytest

from repro.cli import main


def run_cli(capsys, argv):
    assert main(argv) == 0
    captured = capsys.readouterr()
    return captured.out, captured.err


SWEEP_ARGV = [
    "sweep-k", "--scenario", "A", "--profile", "tiny", "--seed", "3",
    "--k", "3", "5",
]


class TestSweepAcceptance:
    def test_parallel_output_identical_to_serial(self, capsys):
        serial_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "1"])
        parallel_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "4"])
        assert parallel_out == serial_out
        assert "bucket-size sweep" in serial_out

    def test_second_run_is_all_cache_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first_out, first_err = run_cli(
            capsys, SWEEP_ARGV + ["--jobs", "1", "--cache-dir", cache_dir]
        )
        assert "0 hits, 2 misses" in first_err

        second_out, second_err = run_cli(
            capsys, SWEEP_ARGV + ["--jobs", "4", "--cache-dir", cache_dir]
        )
        assert second_out == first_out
        assert "2 hits, 0 misses" in second_err
        assert "100% hit rate" in second_err

    def test_cache_info_reports_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli(capsys, SWEEP_ARGV + ["--cache-dir", cache_dir])
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "entries:         2" in info_out
        clear_out, _ = run_cli(capsys, ["cache", "clear", "--cache-dir", cache_dir])
        assert "removed 2 cache entries" in clear_out
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "entries:         0" in info_out


class TestScheduleAcceptance:
    def test_cheapest_adaptive_output_identical_to_fifo(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        fifo_out, _ = run_cli(
            capsys, SWEEP_ARGV + ["--cache-dir", cache_dir, "--schedule", "fifo"]
        )
        # The first run warmed the _costs.json sidecar; re-running with
        # cost-aware scheduling must change stdout by not a single byte
        # (here everything is even a cache hit — and a cold cache in a
        # fresh directory gives the same stdout too).
        cheap_out, cheap_err = run_cli(
            capsys,
            SWEEP_ARGV + [
                "--cache-dir", cache_dir,
                "--schedule", "cheapest", "--adaptive-shards",
            ],
        )
        assert cheap_out == fifo_out
        assert "2 hits, 0 misses" in cheap_err
        fresh_dir = str(tmp_path / "fresh")
        fresh_out, _ = run_cli(
            capsys,
            SWEEP_ARGV + [
                "--cache-dir", fresh_dir,
                "--schedule", "cheapest", "--adaptive-shards",
            ],
        )
        assert fresh_out == fifo_out
        assert (tmp_path / "cache" / "_costs.json").exists()

    def test_batched_output_identical_to_per_task(self, capsys):
        per_task_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "2"])
        for batch in ("auto", "2"):
            batched_out, _ = run_cli(
                capsys, SWEEP_ARGV + ["--jobs", "2", "--batch", batch]
            )
            assert batched_out == per_task_out

    def test_batch_off_overrides_environment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_BATCH", "auto")
        env_out, _ = run_cli(capsys, SWEEP_ARGV + ["--jobs", "2"])
        off_out, _ = run_cli(
            capsys, SWEEP_ARGV + ["--jobs", "2", "--batch", "off"]
        )
        assert off_out == env_out  # identity-free either way

    def test_invalid_batch_rejected(self, capsys):
        for value in ("-1", "several"):
            with pytest.raises(SystemExit) as excinfo:
                main(SWEEP_ARGV + ["--batch", value])
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "Traceback" not in err

    def test_rejects_unknown_schedule(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SWEEP_ARGV + ["--schedule", "fastest"])
        assert excinfo.value.code == 2

    def test_cheapest_without_cache_dir_warns(self, capsys):
        # No cost model without a cache: the flag silently doing nothing
        # would let users believe they measured cheapest-first scheduling.
        _, err = run_cli(capsys, SWEEP_ARGV + ["--schedule", "cheapest"])
        assert "--schedule cheapest needs --cache-dir" in err

    def test_fifo_without_cache_dir_does_not_warn(self, capsys):
        _, err = run_cli(capsys, SWEEP_ARGV)
        assert "needs --cache-dir" not in err


class TestWorkerCountValidation:
    @pytest.mark.parametrize("flag", ["--jobs", "--flow-jobs"])
    @pytest.mark.parametrize("value", ["0", "-2"])
    def test_non_positive_worker_counts_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "E", "--profile", "tiny", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be >= 1" in err
        assert "Traceback" not in err

    def test_non_integer_worker_count_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "E", "--profile", "tiny", "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err


class TestCachePruneMessages:
    def _populate(self, capsys, cache_dir):
        run_cli(capsys, SWEEP_ARGV + ["--cache-dir", cache_dir])

    def test_prune_without_cap_is_an_actionable_error(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "prune", "--cache-dir", cache_dir])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "no size cap" in err
        assert "--max-bytes" in err

    def test_prune_missing_directory_is_an_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "prune", "--cache-dir", str(tmp_path / "nope"),
                  "--max-bytes", "1000"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_prune_within_cap_says_nothing_evicted(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        out, _ = run_cli(
            capsys,
            ["cache", "prune", "--cache-dir", cache_dir,
             "--max-bytes", "999999999"],
        )
        assert "nothing evicted" in out
        assert "already fits the cap" in out

    def test_prune_reports_evictions(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        out, _ = run_cli(
            capsys, ["cache", "prune", "--cache-dir", cache_dir, "--max-bytes", "0"]
        )
        assert "evicted 2 least-recently-used entries" in out

    def test_cache_info_reports_dropped_stores(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "stores dropped:  0" in info_out


class TestRunCommandCache:
    def test_run_uses_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "E", "--profile", "tiny", "--bucket-size", "5",
                "--seed", "1", "--cache-dir", cache_dir]
        first_out, first_err = run_cli(capsys, argv)
        assert "0 hits, 1 misses" in first_err
        second_out, second_err = run_cli(capsys, argv)
        assert second_out == first_out
        assert "1 hits, 0 misses" in second_err

    def test_progress_flag_streams_to_stderr(self, capsys):
        argv = ["run", "E", "--profile", "tiny", "--bucket-size", "3",
                "--seed", "1", "--progress"]
        out, err = run_cli(capsys, argv)
        assert "[1/1]" in err
        assert "[1/1]" not in out


class TestFaultInjectionCli:
    def test_faulted_sweep_output_identical_to_clean(self, capsys, tmp_path):
        # Satellite acceptance: injected task errors are healed by the
        # default retry policy, so --faults changes nothing on stdout.
        cache_dir = str(tmp_path / "cache")
        clean_out, _ = run_cli(capsys, SWEEP_ARGV + ["--batch", "2"])
        faulted_out, _ = run_cli(
            capsys,
            SWEEP_ARGV + [
                "--batch", "2", "--cache-dir", cache_dir,
                "--faults", "task-error@1", "--retries", "4",
            ],
        )
        assert faulted_out == clean_out

    def test_faults_env_not_leaked_after_command(self, capsys):
        import os as _os

        from repro.runtime import faults

        run_cli(
            capsys,
            SWEEP_ARGV + ["--batch", "2", "--faults", "task-error@1"],
        )
        assert faults.ENV_VAR not in _os.environ

    def test_invalid_faults_spec_is_an_argument_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SWEEP_ARGV + ["--faults", "explode@1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid --faults spec" in err
        assert "Traceback" not in err

    def test_invalid_retries_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(SWEEP_ARGV + ["--retries", "0"])
        assert excinfo.value.code == 2


class TestCacheVerifyCli:
    def _populate(self, capsys, cache_dir):
        run_cli(capsys, SWEEP_ARGV + ["--cache-dir", cache_dir])

    @staticmethod
    def _corrupt_one_entry(tmp_path):
        entries = sorted(
            path for path in (tmp_path / "cache").glob("*.json")
            if not path.name.startswith("_")
        )
        target = entries[0]
        payload = bytearray(target.read_bytes())
        payload[len(payload) // 2] ^= 0x01
        target.write_bytes(bytes(payload))
        return target

    def test_verify_clean_cache_exits_zero(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        out, _ = run_cli(capsys, ["cache", "verify", "--cache-dir", cache_dir])
        assert "entries checked: 2" in out
        assert "ok:              2" in out
        assert "corrupt:         0" in out

    def test_verify_quarantines_corrupt_entry_and_exits_nonzero(
        self, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        target = self._corrupt_one_entry(tmp_path)
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        out = capsys.readouterr().out
        assert "corrupt:         1" in out
        assert "quarantined:     1" in out
        assert target.name in out
        assert not target.exists()  # moved into quarantine/
        # A re-scan of the repaired cache is clean (one entry remains).
        out, _ = run_cli(capsys, ["cache", "verify", "--cache-dir", cache_dir])
        assert "entries checked: 1" in out
        assert "corrupt:         0" in out

    def test_verify_no_repair_leaves_entry_in_place(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        target = self._corrupt_one_entry(tmp_path)
        assert main(["cache", "verify", "--cache-dir", cache_dir,
                     "--no-repair"]) == 1
        capsys.readouterr()
        assert target.exists()

    def test_verify_missing_directory_is_an_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "verify", "--cache-dir", str(tmp_path / "nope")])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_cache_info_reports_corrupt_entries(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(capsys, cache_dir)
        self._corrupt_one_entry(tmp_path)
        main(["cache", "verify", "--cache-dir", cache_dir])
        capsys.readouterr()
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "corrupt entries: 1" in info_out


class TestObservabilityCli:
    RUN_ARGV = ["run", "E", "--profile", "tiny", "--bucket-size", "3",
                "--seed", "1"]

    def test_metrics_out_writes_json_and_keeps_stdout_identical(
        self, capsys, tmp_path
    ):
        from repro import obs

        plain_out, _ = run_cli(capsys, self.RUN_ARGV)
        metrics_path = tmp_path / "metrics.json"
        instrumented_out, err = run_cli(
            capsys, self.RUN_ARGV + ["--metrics-out", str(metrics_path)]
        )
        assert instrumented_out == plain_out  # identity-free, stdout too
        assert "wrote metrics" in err
        assert not obs.enabled()  # the CLI undoes its own enablement
        document = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert document["schema"] == "repro-obs-metrics/1"
        counters = document["metrics"]["counters"]
        assert counters["sim.events"] > 0
        assert counters["kademlia.lookups"] > 0

    def test_obs_summary_prints_key_metrics(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        out, _ = run_cli(
            capsys,
            ["obs", "summary", "E", "--profile", "tiny", "--bucket-size",
             "3", "--seed", "1", "--cache-dir", cache_dir],
        )
        assert "repro obs summary" in out
        assert "worker utilisation" in out
        assert "events/sec" in out
        assert "mean lookup virtual-time latency" in out
        assert "hit rate" in out

    def test_obs_summary_trace_out_writes_jsonl(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        run_cli(
            capsys,
            ["obs", "summary", "E", "--profile", "tiny", "--bucket-size",
             "3", "--seed", "1", "--trace-out", str(trace_path)],
        )
        records = [
            json.loads(line)
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        ]
        names = {record["name"] for record in records}
        assert "experiment.run" in names
        assert "snapshot" in names
        assert "campaign.run" in names

    def test_cache_info_reports_lookup_stats(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = self.RUN_ARGV + ["--cache-dir", cache_dir]
        run_cli(capsys, argv)
        run_cli(capsys, argv)  # second run: 1 hit
        info_out, _ = run_cli(capsys, ["cache", "info", "--cache-dir", cache_dir])
        assert "hits:            1" in info_out
        assert "misses:          1" in info_out
        assert "hit rate:        50%" in info_out
        served = [
            line for line in info_out.splitlines()
            if line.startswith("bytes served:")
        ]
        assert served and int(served[0].split()[-1]) > 0

    def test_verbose_flag_accepted(self, capsys):
        import logging

        out, _ = run_cli(capsys, ["-v"] + self.RUN_ARGV)
        assert "scenario" in out
        assert logging.getLogger("repro").level == logging.INFO
        run_cli(capsys, self.RUN_ARGV)  # default resets to WARNING
        assert logging.getLogger("repro").level == logging.WARNING
