"""Tests for the eclipse adversary and the extension study harnesses."""

import random

import pytest

from repro.extensions.adversarial import MaliciousKademliaProtocol
from repro.extensions.evaluation import (
    DISJOINT_STUDY_CONFIG,
    build_static_testbed,
    disjoint_path_study,
    hardening_study,
    hardening_summary,
)
from repro.extensions.hardening import HardeningConfig
from repro.experiments.scenarios import get_scenario
from repro.kademlia.config import KademliaConfig
from repro.kademlia.messages import (
    FindNodeRequest,
    FindValueRequest,
    PingRequest,
    PongResponse,
    StoreRequest,
)
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


def build_malicious(node_id=5, accomplices=(7, 9)):
    config = KademliaConfig(bit_length=16, bucket_size=4, staleness_limit=1)
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
    node = SimNode(node_id)
    protocol = MaliciousKademliaProtocol(node_id, config, accomplices=accomplices)
    protocol.bind(transport, lambda: 0.0)
    node.register_protocol(KademliaProtocol.protocol_name, protocol)
    network.add_node(node)
    return protocol


class TestMaliciousProtocol:
    def test_find_node_returns_accomplices_only(self):
        protocol = build_malicious(accomplices=(7, 9))
        protocol.routing_table.add_contact(2, 0.0)  # an honest contact it knows
        response = protocol.handle_request(1, FindNodeRequest(target_id=2))
        assert set(response.contacts) <= {7, 9}
        assert protocol.poisoned_responses == 1

    def test_find_value_never_returns_the_value(self):
        protocol = build_malicious()
        protocol.storage.put(3, "secret", time=0.0)
        response = protocol.handle_request(1, FindValueRequest(key_id=3))
        assert response.value is None
        assert set(response.contacts) <= protocol.accomplices

    def test_store_is_acknowledged_but_dropped(self):
        protocol = build_malicious()
        response = protocol.handle_request(1, StoreRequest(key_id=3, value="x"))
        assert response.stored
        assert not protocol.storage.has(3)
        assert protocol.dropped_stores == 1

    def test_ping_is_answered_normally(self):
        protocol = build_malicious()
        response = protocol.handle_request(1, PingRequest())
        assert isinstance(response, PongResponse)

    def test_inactive_adversary_behaves_honestly(self):
        protocol = build_malicious(accomplices=(7,))
        protocol.active = False
        protocol.routing_table.add_contact(2, 0.0)
        response = protocol.handle_request(1, FindNodeRequest(target_id=2))
        assert 2 in response.contacts

    def test_own_id_never_advertised_as_accomplice(self):
        protocol = build_malicious(node_id=5, accomplices=(5, 7))
        assert 5 not in protocol.accomplices


class TestStaticTestbed:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            build_static_testbed(1)
        with pytest.raises(ValueError):
            build_static_testbed(4, compromised_count=4)

    def test_builds_connected_population(self):
        testbed = build_static_testbed(20, compromised_count=3, seed=5)
        assert len(testbed.protocols) == 20
        assert len(testbed.compromised) == 3
        assert len(testbed.honest_ids) == 17
        # Every node ended up knowing at least one other node.
        assert all(
            protocol.routing_table.contact_count() > 0
            for protocol in testbed.protocols.values()
        )

    def test_compromised_nodes_start_inactive(self):
        testbed = build_static_testbed(16, compromised_count=2, seed=1)
        assert all(
            not testbed.protocols[node_id].active for node_id in testbed.compromised
        )

    def test_closest_honest_excludes_compromised(self):
        testbed = build_static_testbed(16, compromised_count=4, seed=2)
        closest = testbed.closest_honest(target_id=123, count=5)
        assert not set(closest) & set(testbed.compromised)


class TestDisjointPathStudy:
    def test_rejects_invalid_fraction(self):
        with pytest.raises(ValueError):
            disjoint_path_study(compromised_fraction=1.0)

    def test_reports_one_row_per_path_count(self):
        rows = disjoint_path_study(
            node_count=60,
            compromised_fraction=0.2,
            path_counts=(1, 2),
            lookups=6,
            seed=3,
            config=DISJOINT_STUDY_CONFIG,
        )
        assert [row.path_count for row in rows] == [1, 2]
        for row in rows:
            assert row.lookups == 6
            assert 0.0 <= row.owner_hit_rate <= 1.0
            assert row.replica_hit_rate >= row.owner_hit_rate - 1e-9
            assert row.mean_queried > 0


class TestHardeningStudy:
    def test_runs_each_configuration(self):
        configs = {
            "baseline": HardeningConfig(),
            "extra": HardeningConfig(supplemental_links=4,
                                     supplemental_interval_minutes=4.0),
        }
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        results = hardening_study(scenario, configs, profile="tiny", seed=3)
        assert set(results) == {"baseline", "extra"}
        rows = hardening_summary(results)
        assert {row["configuration"] for row in rows} == {"baseline", "extra"}
        for row in rows:
            assert row["final_network_size"] > 0
