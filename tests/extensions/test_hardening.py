"""Tests for the hardening configuration and its runner integration."""

import pytest

from repro.extensions.hardening import BASELINE, HardeningConfig
from repro.extensions.rotation import ContactRotationPolicy
from repro.extensions.supplemental import (
    SupplementalLinksProtocol,
    SupplementalPrunePolicy,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.kademlia.config import KademliaConfig
from repro.kademlia.protocol import KademliaProtocol


class TestHardeningConfig:
    def test_baseline_is_identity(self):
        assert BASELINE.is_baseline
        assert BASELINE.protocol_factory() is KademliaProtocol
        assert BASELINE.maintenance_policies() == []
        assert BASELINE.describe() == "baseline"

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            HardeningConfig(rotation_fraction=2.0)
        with pytest.raises(ValueError):
            HardeningConfig(supplemental_links=-1)
        with pytest.raises(ValueError):
            HardeningConfig(rotation_interval_minutes=0)

    def test_rotation_policy_is_built(self):
        config = HardeningConfig(rotation_fraction=0.5, rotation_interval_minutes=7.0)
        policies = config.maintenance_policies()
        assert len(policies) == 1
        assert isinstance(policies[0], ContactRotationPolicy)
        assert policies[0].rotation_fraction == 0.5
        assert policies[0].interval_minutes == 7.0
        assert config.describe() == "rotation=0.5"

    def test_supplemental_factory_and_policy(self):
        config = HardeningConfig(supplemental_links=6)
        factory = config.protocol_factory()
        protocol = factory(1, KademliaConfig(bit_length=16, staleness_limit=1))
        assert isinstance(protocol, SupplementalLinksProtocol)
        assert protocol.extra_links == 6
        policies = config.maintenance_policies()
        assert any(isinstance(p, SupplementalPrunePolicy) for p in policies)
        assert config.describe() == "extra_links=6"

    def test_combined_description(self):
        config = HardeningConfig(rotation_fraction=0.25, supplemental_links=4)
        assert config.describe() == "rotation=0.25+extra_links=4"
        assert len(config.maintenance_policies()) == 2


class TestRunnerIntegration:
    def test_run_with_hardening_produces_series(self):
        runner = ExperimentRunner(profile="tiny", seed=11, keep_snapshots=True)
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        hardened = runner.run(
            scenario, hardening=HardeningConfig(supplemental_links=4,
                                                supplemental_interval_minutes=4.0)
        )
        assert len(hardened.series) > 0
        assert hardened.final_network_size() > 0
        # The supplemental protocol was actually used: at least one snapshot
        # row holds more contacts than the plain bucket capacity would allow
        # for the weakest nodes, or (at minimum) the run simply completed
        # with the subclassed protocol.  The structural check is that the
        # simulation was built with the subclass factory.
        simulation = runner.build_simulation(
            scenario, hardening=HardeningConfig(supplemental_links=4)
        )
        protocol = simulation.protocol_factory(123, simulation.config)
        assert isinstance(protocol, SupplementalLinksProtocol)

    def test_run_without_hardening_unchanged(self):
        runner = ExperimentRunner(profile="tiny", seed=11)
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        plain = runner.run(scenario)
        assert len(plain.series) > 0

    def test_maintenance_policies_are_scheduled(self):
        runner = ExperimentRunner(profile="tiny", seed=11)
        scenario = get_scenario("E").with_overrides(bucket_size=5)
        config = HardeningConfig(rotation_fraction=1.0, rotation_interval_minutes=2.0)
        simulation = runner.build_simulation(scenario, hardening=config)
        assert len(simulation.maintenance) == 1
