"""Tests for the contact-rotation maintenance policy."""

import random

import pytest

from repro.extensions.rotation import ContactRotationPolicy
from repro.kademlia.config import KademliaConfig
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


def build_protocol(node_id=1, bucket_size=3, peers=()):
    """One bound protocol plus live peers it can look up during refills."""
    config = KademliaConfig(bit_length=16, bucket_size=bucket_size, alpha=2,
                            staleness_limit=1)
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
    protocols = {}
    for nid in (node_id, *peers):
        node = SimNode(nid)
        protocol = KademliaProtocol(nid, config)
        protocol.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        protocols[nid] = protocol
    return protocols[node_id], protocols


class TestContactRotationPolicy:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContactRotationPolicy(rotation_fraction=1.5)
        with pytest.raises(ValueError):
            ContactRotationPolicy(rotation_fraction=-0.1)
        with pytest.raises(ValueError):
            ContactRotationPolicy(interval_minutes=0)

    def test_non_full_buckets_are_left_alone(self):
        protocol, _ = build_protocol(bucket_size=5, peers=(2, 3))
        protocol.routing_table.add_contact(2, 0.0)
        protocol.routing_table.add_contact(3, 0.0)
        policy = ContactRotationPolicy(rotation_fraction=1.0, refill_lookup=False)
        assert policy.apply(protocol, random.Random(0)) == 0
        assert sorted(protocol.routing_table.contact_ids()) == [2, 3]

    def test_full_bucket_rotates_its_oldest_contact(self):
        # node 1 with bit_length 16: ids 2 and 3 share the same bucket.
        protocol, _ = build_protocol(node_id=1, bucket_size=2, peers=(2, 3))
        protocol.routing_table.add_contact(2, time=0.0)
        protocol.routing_table.add_contact(3, time=1.0)
        bucket = protocol.routing_table.bucket_for(2)
        assert bucket.is_full
        policy = ContactRotationPolicy(rotation_fraction=1.0, refill_lookup=False)
        rotated = policy.apply(protocol, random.Random(0))
        assert rotated == 1
        # The least recently seen contact (2) was evicted.
        assert not protocol.routing_table.contains(2)
        assert protocol.routing_table.contains(3)
        assert policy.rotations_performed == 1

    def test_zero_fraction_never_rotates(self):
        protocol, _ = build_protocol(node_id=1, bucket_size=2, peers=(2, 3))
        protocol.routing_table.add_contact(2, 0.0)
        protocol.routing_table.add_contact(3, 0.0)
        policy = ContactRotationPolicy(rotation_fraction=0.0, refill_lookup=False)
        assert policy.apply(protocol, random.Random(0)) == 0
        assert protocol.routing_table.contact_count() == 2

    def test_refill_lookup_relearns_contacts(self):
        # Peers 2 and 3 fill node 1's bucket; peer 4 knows everyone, so the
        # refill lookup lets node 1 re-populate the freed slot.
        protocol, protocols = build_protocol(node_id=1, bucket_size=2, peers=(2, 3, 4))
        for nid in (2, 3):
            protocol.routing_table.add_contact(nid, 0.0)
        for a in (2, 3, 4):
            for b in (1, 2, 3, 4):
                if a != b:
                    protocols[a].routing_table.add_contact(b, 0.0)
        policy = ContactRotationPolicy(rotation_fraction=1.0, refill_lookup=True)
        rotated = policy.apply(protocol, random.Random(3))
        assert rotated >= 1
        # The table is still populated after rotation + refill.
        assert protocol.routing_table.contact_count() >= 1

    def test_rotation_rate_is_probabilistic(self):
        protocol, _ = build_protocol(node_id=1, bucket_size=2, peers=(2, 3))
        protocol.routing_table.add_contact(2, 0.0)
        protocol.routing_table.add_contact(3, 0.0)
        policy = ContactRotationPolicy(rotation_fraction=0.5, refill_lookup=False)
        # With a fixed seed the draw is deterministic; over many fresh tables
        # the empirical rate would approach 0.5 — here we only check that a
        # draw below the threshold rotates and one above does not.
        rotated = policy.apply(protocol, random.Random(1))
        assert rotated in (0, 1)
