"""Tests for the node-disjoint multi-path lookup."""

import random

import pytest

from repro.extensions.disjoint_lookup import disjoint_find_node
from repro.kademlia.config import KademliaConfig
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


def build_full_mesh(node_ids, bucket_size=8, alpha=2):
    """Every node knows every other node — lookups always succeed."""
    config = KademliaConfig(bit_length=16, bucket_size=bucket_size, alpha=alpha,
                            staleness_limit=1)
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
    protocols = {}
    for node_id in node_ids:
        node = SimNode(node_id)
        protocol = KademliaProtocol(node_id, config)
        protocol.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        protocols[node_id] = protocol
    for a in node_ids:
        for b in node_ids:
            if a != b:
                protocols[a].routing_table.add_contact(b, 0.0)
    return network, protocols


class TestDisjointFindNode:
    def test_rejects_non_positive_path_count(self):
        _, protocols = build_full_mesh([1, 2])
        with pytest.raises(ValueError):
            disjoint_find_node(protocols[1], 2, path_count=0)

    def test_single_path_reaches_target(self):
        node_ids = list(range(1, 12))
        _, protocols = build_full_mesh(node_ids)
        result = disjoint_find_node(protocols[1], 11, path_count=1)
        assert result.path_count == 1
        assert len(result.paths) == 1
        assert 11 in result.contacted
        assert result.succeeded

    def test_paths_query_disjoint_node_sets(self):
        node_ids = list(range(1, 30))
        _, protocols = build_full_mesh(node_ids, bucket_size=6)
        result = disjoint_find_node(protocols[1], 29, path_count=3)
        assert len(result.paths) == 3
        seen = set()
        for path in result.paths:
            contacted = set(path.contacted)
            assert not contacted & seen, "paths must not share queried nodes"
            seen |= contacted
        # The initiator itself is never queried.
        assert 1 not in seen

    def test_result_aggregates_are_consistent(self):
        node_ids = list(range(1, 20))
        _, protocols = build_full_mesh(node_ids, bucket_size=4)
        result = disjoint_find_node(protocols[1], 19, path_count=2)
        assert result.queried == sum(p.queried for p in result.paths)
        assert result.failures == sum(p.failures for p in result.paths)
        assert set(result.contacted) == {
            node for path in result.paths for node in path.contacted
        }

    def test_reached_checks_any_path(self):
        node_ids = list(range(1, 16))
        _, protocols = build_full_mesh(node_ids)
        result = disjoint_find_node(protocols[1], 15, path_count=2)
        assert result.reached([15])
        assert not result.reached([999])

    def test_more_paths_than_seeds_still_works(self):
        _, protocols = build_full_mesh([1, 2, 3])
        result = disjoint_find_node(protocols[1], 3, path_count=5)
        assert len(result.paths) == 5
        assert result.succeeded

    def test_empty_routing_table_yields_empty_result(self):
        config = KademliaConfig(bit_length=16, bucket_size=4, staleness_limit=1)
        network = Network()
        transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
        node = SimNode(1)
        protocol = KademliaProtocol(1, config)
        protocol.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        result = disjoint_find_node(protocol, 5, path_count=2)
        assert not result.succeeded
        assert result.queried == 0
