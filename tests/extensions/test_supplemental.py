"""Tests for the supplemental-links protocol and its prune policy."""

import random

import pytest

from repro.extensions.supplemental import (
    SupplementalLinksProtocol,
    SupplementalPrunePolicy,
)
from repro.kademlia.config import KademliaConfig
from repro.kademlia.messages import FindNodeRequest
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


def build_network(node_ids, extra_links=4, bucket_size=2):
    config = KademliaConfig(bit_length=16, bucket_size=bucket_size, alpha=2,
                            staleness_limit=1)
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
    protocols = {}
    for node_id in node_ids:
        node = SimNode(node_id)
        protocol = SupplementalLinksProtocol(node_id, config, extra_links=extra_links)
        protocol.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        protocols[node_id] = protocol
    return network, protocols


class TestSupplementalLinks:
    def test_rejects_negative_extra_links(self):
        with pytest.raises(ValueError):
            SupplementalLinksProtocol(1, KademliaConfig(bit_length=8), extra_links=-1)

    def test_rejected_contact_lands_in_overflow_list(self):
        _, protocols = build_network([1, 2, 3, 6], bucket_size=1)
        protocol = protocols[1]
        # ids 2 and 3 share node 1's bucket of capacity 1: the second add is
        # rejected by the bucket policy and must end up as a supplemental link.
        assert protocol.note_contact(2)
        assert protocol.note_contact(3)
        assert protocol.routing_table.contains(2)
        assert not protocol.routing_table.contains(3)
        assert protocol.supplemental_ids() == [3]

    def test_overflow_list_is_bounded(self):
        _, protocols = build_network([1], extra_links=2, bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)          # fills bucket 1
        for contact in (3, 6, 7):         # 3 overflows; 6 fills bucket 2; 7 overflows
            protocol.note_contact(contact)
        assert len(protocol.supplemental_ids()) <= 2

    def test_snapshot_includes_supplemental_links(self):
        _, protocols = build_network([1, 2, 3], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)
        snapshot = protocol.routing_table_snapshot()
        assert set(snapshot) == {2, 3}

    def test_promotion_removes_from_overflow(self):
        _, protocols = build_network([1, 2, 3], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)          # rejected -> overflow
        protocol.routing_table.remove_contact(2)
        protocol.note_contact(3)          # bucket now has room -> promoted
        assert protocol.routing_table.contains(3)
        assert 3 not in protocol.supplemental_ids()

    def test_find_node_response_offers_supplemental_contacts(self):
        _, protocols = build_network([1, 2, 3, 9], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)          # supplemental
        response = protocol.handle_request(9, FindNodeRequest(target_id=3))
        assert 3 in response.contacts

    def test_failed_round_trips_prune_supplemental_links(self):
        network, protocols = build_network([1, 2, 3], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)          # supplemental
        network.remove_node(3, time=0.0)
        assert not protocol.ping(3)
        # staleness limit 1: one failure drops the supplemental link.
        assert 3 not in protocol.supplemental_ids()

    def test_successful_round_trip_refreshes_supplemental_link(self):
        _, protocols = build_network([1, 2, 3], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)
        assert protocol.ping(3)
        assert 3 in protocol.supplemental_ids()

    def test_zero_extra_links_behaves_like_plain_protocol(self):
        _, protocols = build_network([1, 2, 3], extra_links=0, bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        assert not protocol.note_contact(3)
        assert protocol.supplemental_ids() == []


class TestSupplementalPrunePolicy:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SupplementalPrunePolicy(interval_minutes=0)
        with pytest.raises(ValueError):
            SupplementalPrunePolicy(pings_per_round=0)

    def test_prunes_dead_supplemental_contact(self):
        network, protocols = build_network([1, 2, 3], bucket_size=1)
        protocol = protocols[1]
        protocol.note_contact(2)
        protocol.note_contact(3)
        network.remove_node(3, time=0.0)
        policy = SupplementalPrunePolicy(interval_minutes=5.0)
        assert policy.apply(protocol, random.Random(0)) == 1
        assert 3 not in protocol.supplemental_ids()
        assert policy.pings_performed == 1

    def test_ignores_plain_protocol_nodes(self):
        config = KademliaConfig(bit_length=16, bucket_size=2, staleness_limit=1)
        network = Network()
        transport = Transport(network, loss_probability=0.0, rng=random.Random(0))
        node = SimNode(1)
        plain = KademliaProtocol(1, config)
        plain.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, plain)
        network.add_node(node)
        policy = SupplementalPrunePolicy()
        assert policy.apply(plain, random.Random(0)) == 0
