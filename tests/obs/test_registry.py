"""Unit tests for the repro.obs metrics registry, tracing and summary."""

import json

import pytest

from repro import obs
from repro.obs import tracing
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.summary import METRICS_SCHEMA, format_summary, write_metrics


class TestHistogram:
    def test_observe_accumulates_summary(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_merge_dict_combines(self):
        left = Histogram()
        left.observe(5.0)
        right = Histogram()
        right.observe(1.0)
        right.observe(3.0)
        left.merge_dict(right.to_dict())
        assert left.count == 3
        assert left.total == 9.0
        assert left.min == 1.0
        assert left.max == 5.0

    def test_merge_empty_dict_is_noop(self):
        histogram = Histogram()
        histogram.observe(2.0)
        histogram.merge_dict(Histogram().to_dict())
        assert histogram.count == 1


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a.count")
        registry.inc("a.count", 4)
        registry.set_gauge("a.gauge", 2.5)
        registry.observe("a.hist", 10.0)
        assert registry.counter("a.count") == 5
        assert registry.gauge("a.gauge") == 2.5
        assert registry.histogram("a.hist").count == 1
        assert registry.counter("never.touched") == 0
        assert registry.gauge("never.touched") is None
        assert registry.histogram("never.touched") is None

    def test_wall_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.time("t.wall"):
            pass
        histogram = registry.histogram("t.wall")
        assert histogram.count == 1
        assert histogram.total >= 0.0

    def test_virtual_timer_observes_clock_delta(self):
        registry = MetricsRegistry()
        ticks = iter([10.0, 14.0])
        with registry.time_virtual("t.virtual", lambda: next(ticks)):
            pass
        histogram = registry.histogram("t.virtual")
        assert histogram.count == 1
        assert histogram.total == 4.0

    def test_snapshot_is_plain_json(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must serialise without custom encoders
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_and_combines_histograms(self):
        target = MetricsRegistry()
        target.inc("c", 1)
        target.observe("h", 1.0)
        source = MetricsRegistry()
        source.inc("c", 2)
        source.observe("h", 3.0)
        target.merge(source.snapshot())
        assert target.counter("c") == 3
        assert target.histogram("h").count == 2
        assert target.histogram("h").total == 4.0

    def test_merge_folds_gauges_into_histograms(self):
        # A worker's gauge (one task's events/sec) becomes an observation
        # of the campaign-level distribution, not a last-write-wins gauge.
        target = MetricsRegistry()
        for rate in (100.0, 300.0):
            source = MetricsRegistry()
            source.set_gauge("sim.events_per_sec", rate)
            target.merge(source.snapshot())
        histogram = target.histogram("sim.events_per_sec")
        assert histogram.count == 2
        assert histogram.mean == 200.0
        assert target.gauge("sim.events_per_sec") is None

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 1.0)
        registry.clear()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestEnablement:
    @pytest.fixture(autouse=True)
    def _clean_state(self):
        obs.disable()
        yield
        obs.disable()

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        assert not obs.enabled()
        assert obs.active() is None
        with obs.run_scope() as registry:
            assert registry is None

    def test_enable_exports_env_and_disable_removes_it(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_VAR, raising=False)
        registry = obs.enable()
        assert obs.enabled()
        assert obs.active() is registry
        import os
        assert os.environ.get(obs.ENV_VAR) == "1"
        obs.disable()
        assert os.environ.get(obs.ENV_VAR) is None
        assert obs.active() is None

    def test_run_scope_isolates_runs(self):
        root = obs.enable()
        root.inc("outer")
        with obs.run_scope() as registry:
            assert registry is not None
            assert registry is not root
            assert obs.active() is registry
            registry.inc("inner")
        assert obs.active() is root
        assert root.counter("inner") == 0
        assert registry.counter("inner") == 1
        assert registry.counter("outer") == 0


class TestTracing:
    @pytest.fixture(autouse=True)
    def _clean_tracer(self):
        tracing.reset_tracer()
        yield
        tracing.reset_tracer()

    def test_null_span_when_disabled(self):
        assert tracing.active_tracer() is None
        with tracing.span("anything", detail=1):
            tracing.point("still.nothing")
        # Nothing raised, nothing written — that is the contract.

    def test_spans_and_points_write_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracing.configure_tracer(str(path))
        with tracing.span("outer", kind="test"):
            tracing.point("inner.point", value=7)
        tracing.reset_tracer()
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        by_name = {record["name"]: record for record in records}
        assert set(by_name) == {"outer", "inner.point"}
        outer = by_name["outer"]
        point = by_name["inner.point"]
        assert outer["attrs"] == {"kind": "test"}
        assert outer["dur"] >= 0.0
        assert point["attrs"] == {"value": 7}
        # The point is parented to the enclosing span.
        assert point["parent"] == outer["id"]
        assert outer.get("parent") is None

    def test_env_variable_configures_tracer(self, tmp_path, monkeypatch):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv(tracing.ENV_VAR, str(path))
        tracing.reset_tracer()
        tracer = tracing.active_tracer()
        assert tracer is not None
        tracing.point("hello")
        tracing.reset_tracer()
        monkeypatch.delenv(tracing.ENV_VAR)
        assert "hello" in path.read_text(encoding="utf-8")


class TestSummary:
    def _populated_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("campaign.tasks_submitted", 4)
        registry.inc("campaign.tasks_completed", 4)
        registry.inc("campaign.cache_hits", 1)
        registry.set_gauge("campaign.workers", 2)
        registry.set_gauge("campaign.worker_utilisation", 0.75)
        registry.set_gauge("cache.hits", 1)
        registry.set_gauge("cache.misses", 3)
        registry.set_gauge("cache.bytes_served", 2048)
        registry.inc("sim.events", 1000)
        registry.set_gauge("sim.events_per_sec", 5000.0)
        registry.inc("transport.round_trips_ok", 90)
        registry.inc("transport.round_trips_failed", 10)
        registry.inc("transport.messages.FindNodeRequest", 100)
        registry.inc("kademlia.lookups", 12)
        registry.observe("kademlia.lookup.virtual_latency", 3.0)
        registry.observe("kademlia.lookup.rounds", 3.0)
        registry.inc("pairflow.pairs_submitted", 50)
        registry.inc("pairflow.pairs_evaluated", 40)
        registry.inc("pairflow.pairs_pruned", 10)
        return registry.snapshot()

    def test_format_summary_renders_key_lines(self):
        text = format_summary(self._populated_snapshot())
        assert "worker utilisation: 75%" in text
        assert "hit rate: 25%" in text
        assert "events/sec: 5000" in text
        assert "FindNodeRequest=100" in text
        assert "mean lookup virtual-time latency: 3.00 RTT" in text
        assert "prune rate: 20%" in text

    def test_format_summary_handles_empty_snapshot(self):
        text = format_summary({})
        assert "campaign" in text
        assert "kademlia" in text

    def test_format_summary_has_one_line_per_overlay(self):
        registry = MetricsRegistry()
        registry.inc("chord.lookups", 5)
        registry.observe("chord.lookup.virtual_latency", 4.0)
        registry.observe("chord.lookup.rounds", 4.0)
        registry.inc("chord.lookup.failed_rpcs", 2)
        registry.inc("pastry.lookups", 7)
        registry.inc("pastry.refreshes", 3)
        text = format_summary(registry.snapshot())
        lines = {
            line.split()[0]: line
            for line in text.splitlines()
            if line.split() and line.split()[0] in ("kademlia", "chord", "pastry")
        }
        assert set(lines) == {"kademlia", "chord", "pastry"}
        assert "lookups: 5" in lines["chord"]
        assert "mean lookup virtual-time latency: 4.00 RTT" in lines["chord"]
        assert "failed RPCs: 2" in lines["chord"]
        assert "lookups: 7" in lines["pastry"]
        assert "refreshes: 3" in lines["pastry"]
        # Kademlia keeps its historical refresh wording.
        assert "bucket refreshes:" in lines["kademlia"]

    def test_write_metrics_wraps_schema(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(str(path), self._populated_snapshot())
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["schema"] == METRICS_SCHEMA
        assert document["metrics"]["counters"]["sim.events"] == 1000
