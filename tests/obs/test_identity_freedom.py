"""Observability must never move a simulated bit.

The contract gated here (and re-gated in CI with ``REPRO_OBS=1`` on the
full digest suite): enabling :mod:`repro.obs` — metrics registries on
every layer, per-run scopes, snapshots riding on results, campaign-level
merging — reproduces the golden trajectory digests and the committed
cache entries byte-identically.  Instrumentation reads the simulation;
it never feeds anything back into RNG draws, event ordering, fingerprints
or persisted documents.
"""

import copy
import json
from pathlib import Path

import pytest

from repro import obs
from repro.experiments.persistence import trajectory_digest
from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import Scenario, get_scenario

SEED = 42

#: Golden digests captured by the pre-rewrite implementation; must match
#: tests/experiments/test_determinism_digest.py exactly.
GOLDEN_TINY_E = "fc166f8e8625eed963ae20e200a3027bf2b93f8174aff5307c98975aa0d5986f"
GOLDEN_TINY_A = "cf0f4cb8bbd8a497cef3a11ffaf3c432c46ecd92687f77000b93815d1a41dab9"

SAMPLED_ENTRIES_DIR = (
    Path(__file__).parent.parent / "experiments" / "data" / "sampled-cache-entries"
)


@pytest.fixture
def obs_enabled():
    """Enable observability for one test and fully tear it down after."""
    obs.disable()
    registry = obs.enable()
    yield registry
    obs.disable()


class TestDigestsWithObsEnabled:
    def test_serial_digest_unchanged_and_metrics_attached(self, obs_enabled):
        runner = ExperimentRunner(profile="tiny", seed=SEED, keep_snapshots=True)
        result = runner.run(get_scenario("E"))
        assert trajectory_digest(result) == GOLDEN_TINY_E
        # The run really was instrumented — the snapshot rides on the
        # transient field, outside the digest and outside persistence.
        assert result.obs_metrics is not None
        counters = result.obs_metrics["counters"]
        assert counters["sim.events"] > 0
        assert counters["kademlia.lookups"] > 0
        assert counters["transport.round_trips_ok"] > 0

    def test_digest_identical_to_uninstrumented_run(self):
        obs.disable()
        plain = ExperimentRunner(profile="tiny", seed=SEED, keep_snapshots=True)
        plain_result = plain.run(get_scenario("A"))
        assert plain_result.obs_metrics is None
        assert trajectory_digest(plain_result) == GOLDEN_TINY_A
        try:
            obs.enable()
            instrumented = ExperimentRunner(
                profile="tiny", seed=SEED, keep_snapshots=True
            )
            result = instrumented.run(get_scenario("A"))
        finally:
            obs.disable()
        assert trajectory_digest(result) == GOLDEN_TINY_A

    def test_fingerprint_carries_no_obs_key(self, obs_enabled):
        from repro.runtime import ExperimentTask

        task = ExperimentTask.create(
            scenario=get_scenario("E"), profile="tiny", seed=SEED
        )
        fingerprint = json.dumps(task.fingerprint()).lower()
        assert "obs" not in fingerprint
        assert "metric" not in fingerprint


class TestBatchedCampaignWithObsEnabled:
    def test_sampled_entry_recomputes_byte_identically(
        self, obs_enabled, tmp_path
    ):
        """A 2-worker batched, fully instrumented campaign reproduces a
        committed cache entry byte for byte (wall-clock excluded), while
        progress events carry live metrics and the campaign registry
        accumulates the workers' per-run snapshots."""
        from repro.runtime import (
            Campaign,
            ExperimentTask,
            ParallelExecutor,
            ResultCache,
        )

        entry_path = min(
            SAMPLED_ENTRIES_DIR.glob("*.json"),
            key=lambda path: path.stat().st_size,
        )
        committed = json.loads(entry_path.read_text(encoding="utf-8"))
        fingerprint = committed["task"]
        task = ExperimentTask(
            scenario=Scenario(**fingerprint["scenario"]),
            profile=ScaleProfile(**fingerprint["profile"]),
            seed=fingerprint["seed"],
            algorithm=fingerprint["algorithm"],
            keep_snapshots=fingerprint["keep_snapshots"],
        )
        assert task.key() == committed["key"]

        events = []
        cache = ResultCache(tmp_path / "cache")
        with Campaign(
            executor=ParallelExecutor(jobs=2),
            cache=cache,
            progress=events.append,
            batch=2,
        ) as campaign:
            result = campaign.run_one(task)

        fresh_path = tmp_path / "cache" / entry_path.name
        fresh = json.loads(fresh_path.read_text(encoding="utf-8"))
        assert _normalised_entry(fresh) == _normalised_entry(committed)

        # The worker was instrumented (env export) and its snapshot came
        # back over the pickle boundary and into the campaign registry.
        assert result.obs_metrics is not None
        assert result.obs_metrics["counters"]["sim.events"] > 0
        assert obs_enabled.counter("sim.events") > 0
        assert obs_enabled.counter("campaign.tasks_completed") == 1
        assert obs_enabled.counter("campaign.batches_dispatched") >= 1
        # Progress events carry the live metrics dict only while obs is on.
        assert events and all(event.metrics is not None for event in events)
        assert events[-1].metrics["completed"] == 1

    def test_progress_metrics_absent_when_obs_off(self, tmp_path):
        from repro.runtime import Campaign, ExperimentTask, ResultCache

        obs.disable()
        task = ExperimentTask.create(
            scenario=get_scenario("E"), profile="tiny", seed=SEED
        )
        events = []
        campaign = Campaign(
            cache=ResultCache(tmp_path / "cache"), progress=events.append
        )
        result = campaign.run_one(task)
        assert result.obs_metrics is None
        assert events and all(event.metrics is None for event in events)


def _normalised_entry(document: dict) -> str:
    """Canonical JSON with wall-clock fields removed (mirrors the digest
    suite's exclusions — everything else must compare byte-identically).
    The envelope-level integrity ``checksum`` covers the raw stored bytes
    including wall-clock fields, so it is excluded alongside them."""
    document = copy.deepcopy(document)
    document.pop("checksum", None)
    document["result"].pop("wall_seconds", None)
    for sample in document["result"]["series"]["samples"]:
        sample["report"].pop("elapsed_seconds", None)
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
