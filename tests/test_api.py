"""Tests for the stable ``repro.api`` facade.

Three contracts:

* every name in ``repro.api.__all__`` resolves (the import surface is
  real, not aspirational);
* the facade's entry points work end to end without touching internal
  modules;
* ``examples/`` imports **only** ``repro.api`` from this project — the
  facade is the single supported import surface for downstream code,
  and the examples are its reference consumers.
"""

import ast
from pathlib import Path

import pytest

import repro.api as api

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestImportSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.__all__ lists missing {name!r}"

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        for name in api.__all__:
            assert name in namespace


class TestExamplesUseOnlyTheFacade:
    @pytest.mark.parametrize(
        "example", sorted(EXAMPLES_DIR.glob("*.py")), ids=lambda p: p.name
    )
    def test_example_imports_only_repro_api(self, example):
        tree = ast.parse(example.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    assert root != "repro" or alias.name == "repro.api", (
                        f"{example.name} imports {alias.name}; examples must "
                        "import repro.api only"
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "repro":
                    assert module == "repro.api", (
                        f"{example.name} imports from {module}; examples must "
                        "import from repro.api only"
                    )


class TestEntryPoints:
    @pytest.fixture(scope="class")
    def snapshot(self):
        return api.synthetic_snapshot(64, contacts_per_node=8, seed=1)

    def test_synthetic_snapshot_shape(self, snapshot):
        assert isinstance(snapshot, api.RoutingTableSnapshot)
        assert len(snapshot.routing_tables) == 64
        assert all(
            len(contacts) <= 8 for contacts in snapshot.routing_tables.values()
        )

    def test_analyze_snapshot_exact(self, snapshot):
        report = api.analyze_snapshot(snapshot)
        assert report.is_exact
        assert report.confidence_interval is None
        assert report.min_connectivity >= 0

    def test_analyze_snapshot_estimate(self, snapshot):
        report = api.analyze_snapshot(
            snapshot, connectivity="estimate", sample_pairs=32, seed=3
        )
        assert not report.is_exact
        low, high = report.confidence_interval
        assert low <= report.avg_connectivity <= high

    def test_estimate_connectivity_accepts_raw_tables(self, snapshot):
        from_tables = api.estimate_connectivity(
            snapshot.routing_tables, sample_pairs=32, seed=3
        )
        from_snapshot = api.estimate_connectivity(snapshot, sample_pairs=32, seed=3)
        assert from_tables.minimum_bound == from_snapshot.minimum_bound
        assert from_tables.average_estimate == from_snapshot.average_estimate

    def test_run_scenario_smoke(self):
        result = api.run_scenario("A", profile="tiny", seed=42)
        assert isinstance(result, api.ExperimentResult)
        assert result.series.samples

    def test_run_scenario_estimate_mode(self):
        result = api.run_scenario(
            "A", profile="tiny", seed=42,
            connectivity="estimate", sample_pairs=32,
        )
        report = result.series.samples[-1].report
        assert isinstance(report, api.EstimatedConnectivityReport)

    def test_run_sweep_smoke(self):
        results = api.run_sweep(
            "A", [{"bucket_size": 3}, {"bucket_size": 5}],
            profile="tiny", seed=42,
        )
        assert len(results) == 2
        assert [r.scenario.bucket_size for r in results] == [3, 5]

    def test_open_campaign(self, tmp_path):
        campaign = api.open_campaign(cache_dir=tmp_path / "cache")
        try:
            assert isinstance(campaign, api.Campaign)
        finally:
            campaign.close()

    def test_validate_exact_vs_estimate_via_facade(self, snapshot):
        from repro.core.connectivity_graph import build_connectivity_graph

        graph = build_connectivity_graph(snapshot.routing_tables)
        validation = api.validate_exact_vs_estimate(graph, sample_pairs=48, seed=2)
        assert validation.average_within_ci
        assert validation.minimum_bound_valid
