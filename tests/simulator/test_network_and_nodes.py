"""Tests for the node registry and simulation nodes."""

import random

import pytest

from repro.simulator.errors import NodeNotFoundError
from repro.simulator.network import Network
from repro.simulator.node import SimNode


class TestSimNode:
    def test_initial_state(self):
        node = SimNode(0xAB, joined_at=3.0)
        assert node.alive
        assert node.joined_at == 3.0
        assert node.left_at is None

    def test_kill(self):
        node = SimNode(1)
        node.kill(9.0)
        assert not node.alive
        assert node.left_at == 9.0

    def test_protocol_registry(self):
        node = SimNode(1)
        sentinel = object()
        node.register_protocol("kademlia", sentinel)
        assert node.protocol("kademlia") is sentinel


class TestNetwork:
    def test_add_and_get(self):
        network = Network()
        network.add_node(SimNode(1))
        assert network.contains(1)
        assert network.get(1).node_id == 1
        assert len(network) == 1

    def test_duplicate_id_rejected(self):
        network = Network()
        network.add_node(SimNode(1))
        with pytest.raises(ValueError):
            network.add_node(SimNode(1))

    def test_get_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Network().get(42)

    def test_remove_marks_dead_but_keeps_addressable(self):
        network = Network()
        network.add_node(SimNode(1))
        network.remove_node(1, time=5.0)
        assert network.contains(1)
        assert not network.is_alive(1)
        assert network.alive_count() == 0

    def test_forget_node(self):
        network = Network()
        network.add_node(SimNode(1))
        network.forget_node(1)
        assert not network.contains(1)
        with pytest.raises(NodeNotFoundError):
            network.forget_node(1)

    def test_alive_queries(self):
        network = Network()
        for node_id in range(5):
            network.add_node(SimNode(node_id))
        network.remove_node(2, time=1.0)
        assert network.alive_count() == 4
        assert 2 not in network.alive_ids()
        assert len(network.alive_nodes()) == 4
        assert len(list(network)) == 5

    def test_random_alive_node_respects_exclude(self):
        network = Network()
        network.add_node(SimNode(1))
        network.add_node(SimNode(2))
        rng = random.Random(0)
        for _ in range(20):
            chosen = network.random_alive_node(rng, exclude=1)
            assert chosen.node_id == 2

    def test_random_alive_node_empty(self):
        assert Network().random_alive_node(random.Random(0)) is None

    def test_random_alive_node_uniformity(self):
        network = Network()
        for node_id in range(3):
            network.add_node(SimNode(node_id))
        rng = random.Random(1)
        counts = {0: 0, 1: 0, 2: 0}
        for _ in range(600):
            counts[network.random_alive_node(rng).node_id] += 1
        assert all(count > 120 for count in counts.values())
