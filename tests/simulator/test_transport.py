"""Tests for the loss-aware transport."""

import random

import pytest

from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.protocol import Protocol
from repro.simulator.transport import Transport, TransportStats


class EchoProtocol(Protocol):
    """Test protocol that records senders and echoes the request back."""

    protocol_name = "kademlia"

    def __init__(self, node_id):
        super().__init__(node_id)
        self.seen = []

    def handle_request(self, sender_id, request):
        self.seen.append((sender_id, request))
        return ("echo", request)


class SilentProtocol(Protocol):
    """Protocol that never answers (models an unresponsive node)."""

    def __init__(self, node_id):
        super().__init__(node_id)

    def handle_request(self, sender_id, request):
        return None


def make_network(*node_ids, protocol_cls=EchoProtocol, protocol_name="kademlia"):
    network = Network()
    protocols = {}
    for node_id in node_ids:
        node = SimNode(node_id)
        protocol = protocol_cls(node_id)
        node.register_protocol(protocol_name, protocol)
        network.add_node(node)
        protocols[node_id] = protocol
    return network, protocols


class TestTransport:
    def test_successful_round_trip(self):
        network, protocols = make_network(1, 2)
        transport = Transport(network, loss_probability=0.0)
        ok, response = transport.rpc(1, 2, "ping")
        assert ok
        assert response == ("echo", "ping")
        assert protocols[2].seen == [(1, "ping")]
        assert transport.stats.round_trips_ok == 1

    def test_request_to_dead_node_fails(self):
        network, _ = make_network(1, 2)
        network.remove_node(2, time=0.0)
        transport = Transport(network, loss_probability=0.0)
        ok, response = transport.rpc(1, 2, "ping")
        assert not ok and response is None
        assert transport.stats.requests_to_dead_nodes == 1

    def test_request_to_unknown_node_fails(self):
        network, _ = make_network(1)
        transport = Transport(network, loss_probability=0.0)
        ok, _ = transport.rpc(1, 99, "ping")
        assert not ok
        assert transport.stats.requests_to_dead_nodes == 1

    def test_request_to_node_without_protocol_fails(self):
        network, _ = make_network(1)
        network.add_node(SimNode(2))  # no protocol registered
        transport = Transport(network, loss_probability=0.0)
        ok, _ = transport.rpc(1, 2, "ping")
        assert not ok

    def test_silent_protocol_counts_as_failure(self):
        network, _ = make_network(1, 2, protocol_cls=SilentProtocol, protocol_name="protocol")
        transport = Transport(network, loss_probability=0.0, protocol_name="protocol")
        ok, _ = transport.rpc(1, 2, "ping")
        assert not ok

    def test_full_loss_never_delivers(self):
        network, protocols = make_network(1, 2)
        transport = Transport(network, loss_probability=0.999, rng=random.Random(0))
        successes = sum(transport.rpc(1, 2, "ping")[0] for _ in range(200))
        assert successes == 0

    def test_invalid_loss_probability(self):
        network, _ = make_network(1)
        with pytest.raises(ValueError):
            Transport(network, loss_probability=1.0)
        with pytest.raises(ValueError):
            Transport(network, loss_probability=-0.1)

    def test_two_way_loss_probability(self):
        network, _ = make_network(1)
        transport = Transport(network, loss_probability=0.293, rng=random.Random(0))
        assert transport.two_way_loss_probability() == pytest.approx(0.5, abs=0.01)

    def test_loss_rate_statistics(self):
        """Observed round-trip failure rate matches 1 - (1 - p)^2."""
        network, protocols = make_network(1, 2)
        transport = Transport(network, loss_probability=0.25, rng=random.Random(42))
        trials = 4000
        failures = sum(not transport.rpc(1, 2, "x")[0] for _ in range(trials))
        expected = 1.0 - 0.75 ** 2
        assert failures / trials == pytest.approx(expected, abs=0.03)

    def test_request_leg_side_effects_apply_even_if_response_lost(self):
        """If only the response is lost the target still processed the request."""
        network, protocols = make_network(1, 2)
        transport = Transport(network, loss_probability=0.45, rng=random.Random(7))
        attempts = 500
        for _ in range(attempts):
            transport.rpc(1, 2, "ping")
        delivered_requests = len(protocols[2].seen)
        successful = transport.stats.round_trips_ok
        # Some requests were processed although the round-trip failed.
        assert delivered_requests > successful

    def test_stats_reset(self):
        stats = TransportStats(requests_sent=5, requests_lost=1)
        stats.reset()
        assert stats.requests_sent == 0
        assert stats.round_trips_failed == 0
