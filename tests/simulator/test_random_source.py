"""Tests for the seeded random stream fan-out."""

from repro.simulator.random_source import RandomSource


class TestRandomSource:
    def test_same_seed_same_streams(self):
        a = RandomSource(1).stream("churn")
        b = RandomSource(1).stream("churn")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        source = RandomSource(1)
        churn = [source.stream("churn").random() for _ in range(5)]
        traffic = [source.stream("traffic").random() for _ in range(5)]
        assert churn != traffic

    def test_stream_is_cached(self):
        source = RandomSource(1)
        assert source.stream("x") is source.stream("x")

    def test_order_of_first_use_does_not_matter(self):
        first = RandomSource(9)
        second = RandomSource(9)
        # Request streams in different orders; each named stream must still
        # produce the same sequence.
        first.stream("b")
        value_a_first = first.stream("a").random()
        value_a_second = second.stream("a").random()
        assert value_a_first == value_a_second

    def test_spawn_derives_new_universe(self):
        root = RandomSource(5)
        child_one = root.spawn("scenario-A")
        child_two = root.spawn("scenario-B")
        assert child_one.seed != child_two.seed
        assert child_one.stream("churn").random() != child_two.stream("churn").random()

    def test_spawn_reproducible(self):
        assert RandomSource(5).spawn("x").seed == RandomSource(5).spawn("x").seed

    def test_seed_property(self):
        assert RandomSource(17).seed == 17
