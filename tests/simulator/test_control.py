"""Tests for periodic controls and observers."""

from repro.simulator.control import ObserverRegistry, PeriodicControl
from repro.simulator.engine import Simulator


class TestPeriodicControl:
    def test_invocations_at_interval(self):
        sim = Simulator()
        fired = []
        control = PeriodicControl(sim, 5.0, lambda: fired.append(sim.now), start=5.0, end=20.0)
        sim.run_until(30.0)
        assert fired == [5.0, 10.0, 15.0, 20.0]
        assert control.invocations == 4

    def test_default_start_is_one_interval(self):
        sim = Simulator()
        fired = []
        PeriodicControl(sim, 2.0, lambda: fired.append(sim.now), end=6.0)
        sim.run_until(10.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_stop_disables_future_ticks(self):
        sim = Simulator()
        fired = []
        control = PeriodicControl(sim, 1.0, lambda: fired.append(sim.now), start=1.0)
        sim.run_until(3.0)
        control.stop()
        sim.run_until(6.0)
        assert fired == [1.0, 2.0, 3.0]


class TestObserverRegistry:
    def test_notify_calls_all_observers(self):
        registry = ObserverRegistry()
        seen = []
        registry.register(lambda t: seen.append(("a", t)))
        registry.register(lambda t: seen.append(("b", t)))
        registry.notify(4.0)
        assert seen == [("a", 4.0), ("b", 4.0)]
        assert len(registry) == 2
