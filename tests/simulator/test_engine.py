"""Tests for the discrete-event engine and event queue."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.errors import SchedulingError
from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 5.0
        assert queue.pop() is None

    def test_stable_for_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, label="first")
        queue.push(1.0, lambda: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="cancelled")
        queue.push(2.0, lambda: None, label="kept")
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().label == "kept"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 3.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None


class TestLazyCancellation:
    def test_len_is_live_count(self):
        queue = EventQueue()
        events = [queue.push(float(t), lambda: None) for t in range(10)]
        assert len(queue) == 10
        for event in events[:4]:
            event.cancel()
        assert len(queue) == 6
        # Double-cancel must not double-count.
        events[0].cancel()
        assert len(queue) == 6

    def test_compaction_drops_dead_entries(self):
        queue = EventQueue()
        events = [queue.push(float(t), lambda: None) for t in range(10)]
        for event in events[:6]:
            event.cancel()
        # More than half the heap was dead: the queue compacted in place.
        assert len(queue._heap) == len(queue) == 4
        assert queue.cancelled_pending == 0
        assert [queue.pop().time for _ in range(4)] == [6.0, 7.0, 8.0, 9.0]
        assert queue.pop() is None

    def test_cancel_after_fire_is_harmless(self):
        # The cancel-if-not-yet-fired timeout idiom: cancelling an event
        # that already popped must not corrupt the live count.
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is first
        first.cancel()
        assert len(queue) == 1
        assert queue.cancelled_pending == 0

    def test_cancel_after_clear_is_harmless(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.clear()
        event.cancel()
        assert len(queue) == 0
        queue.push(2.0, lambda: None)
        assert len(queue) == 1

    def test_event_args_are_passed(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, args=(42,))
        queue.pop().fire()
        assert fired == [42]


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run_until(5.0)
        assert fired == [1, 2]
        assert sim.now == 5.0
        assert sim.events_processed == 2

    def test_schedule_in_relative_delay(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run_until(20.0)
        assert fired == [12.5]

    def test_events_after_horizon_not_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(7))
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(10.0)
        assert fired == [7]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule_in(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_periodic_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(2.0, lambda: fired.append(sim.now), start=2.0, end=8.0)
        sim.run_until(20.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_periodic_requires_positive_interval(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_run_all_and_reset(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run_all()
        assert fired == [1, 2]
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0

    def test_run_all_respects_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule_at(float(t), lambda t=t: fired.append(t))
        sim.run_all(max_events=3)
        assert fired == [1, 2, 3]

    def test_clock_monotonic_even_without_events(self):
        sim = Simulator()
        sim.run_until(4.0)
        sim.run_until(2.0)
        assert sim.now == 4.0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = [sim.schedule_at(float(t), lambda: None) for t in (1, 2, 3)]
        doomed = [sim.schedule_at(float(t), lambda: None) for t in (4, 5, 6, 7)]
        for event in doomed:
            event.cancel()
        # The heap compacted (4 of 7 dead) and the live count stayed exact.
        assert sim.pending_events == 3
        assert sim.cancelled_pending_events == 0
        keep[0].cancel()
        assert sim.pending_events == 2

    def test_run_all_max_events_ignores_cancelled(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        cancelled = sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.schedule_at(4.0, lambda: fired.append(4))
        cancelled.cancel()
        # Budget of 2 executed events: the cancelled one must not consume it.
        sim.run_all(max_events=2)
        assert fired == [1, 3]
        assert sim.events_processed == 2
        assert sim.pending_events == 1

    def test_run_until_with_cancellations_during_callbacks(self):
        sim = Simulator()
        fired = []
        later = [sim.schedule_at(5.0 + t, lambda t=t: fired.append(t)) for t in range(6)]

        def cancel_most():
            fired.append("cancel")
            for event in later[1:]:
                event.cancel()

        sim.schedule_at(1.0, cancel_most)
        sim.run_until(20.0)
        assert fired == ["cancel", 0]
        assert sim.pending_events == 0

    def test_late_cancel_of_fired_event_keeps_pending_exact(self):
        sim = Simulator()
        fired = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run_until(1.5)
        fired.cancel()  # already executed: must be a no-op
        assert sim.pending_events == 1
        assert sim.cancelled_pending_events == 0

    def test_scheduling_with_args(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, fired.append, args=("at",))
        sim.schedule_in(2.0, fired.append, args=("in",))
        sim.run_until(5.0)
        assert fired == ["at", "in"]
