"""Tests for the discrete-event engine and event queue."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.errors import SchedulingError
from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        assert queue.pop().time == 1.0
        assert queue.pop().time == 5.0
        assert queue.pop() is None

    def test_stable_for_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, label="first")
        queue.push(1.0, lambda: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="cancelled")
        queue.push(2.0, lambda: None, label="kept")
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().label == "kept"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 3.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert queue.pop() is None


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run_until(5.0)
        assert fired == [1, 2]
        assert sim.now == 5.0
        assert sim.events_processed == 2

    def test_schedule_in_relative_delay(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_in(2.5, lambda: fired.append(sim.now))
        sim.run_until(20.0)
        assert fired == [12.5]

    def test_events_after_horizon_not_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(7))
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(10.0)
        assert fired == [7]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(1.0, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule_in(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule_in(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_periodic_scheduling(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(2.0, lambda: fired.append(sim.now), start=2.0, end=8.0)
        sim.run_until(20.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_periodic_requires_positive_interval(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_periodic(0.0, lambda: None)

    def test_run_all_and_reset(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run_all()
        assert fired == [1, 2]
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0

    def test_run_all_respects_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule_at(float(t), lambda t=t: fired.append(t))
        sim.run_all(max_events=3)
        assert fired == [1, 2, 3]

    def test_clock_monotonic_even_without_events(self):
        sim = Simulator()
        sim.run_until(4.0)
        sim.run_until(2.0)
        assert sim.now == 4.0
