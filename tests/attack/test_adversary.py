"""Tests for the adversary strategies."""

import random

import pytest

from repro.attack.adversary import (
    Adversary,
    highest_degree_strategy,
    lowest_degree_strategy,
    min_cut_strategy,
    random_strategy,
)
from repro.graph.digraph import DiGraph


class TestStrategies:
    def test_random_strategy_respects_budget(self, circulant12):
        targets = random_strategy(circulant12, 5, random.Random(0))
        assert len(targets) == 5
        assert len(set(targets)) == 5
        assert all(circulant12.has_vertex(v) for v in targets)

    def test_random_strategy_budget_larger_than_graph(self, ring10):
        targets = random_strategy(ring10, 50, random.Random(0))
        assert len(targets) == 10

    def test_highest_degree_picks_hubs(self):
        graph = DiGraph()
        for leaf in range(1, 6):
            graph.add_edge(0, leaf)
            graph.add_edge(leaf, 0)
        targets = highest_degree_strategy(graph, 1, random.Random(0))
        assert targets == [0]

    def test_lowest_degree_picks_leaves(self):
        graph = DiGraph()
        for leaf in range(1, 6):
            graph.add_edge(0, leaf)
            graph.add_edge(leaf, 0)
        graph.add_edge(1, 2)
        targets = lowest_degree_strategy(graph, 1, random.Random(0))
        assert targets[0] not in (0, 1, 2)

    def test_min_cut_strategy_disconnects_barbell(self):
        """Two triangles joined through one articulation chain: the cut is a single vertex."""
        graph = DiGraph()
        undirected_edges = [
            ("a", "b"), ("b", "c"), ("c", "a"),          # triangle 1
            ("d", "f"), ("f", "g"), ("g", "d"),          # triangle 2
            ("c", "e"), ("e", "d"),                       # bridge through e
        ]
        for u, v in undirected_edges:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
        targets = min_cut_strategy(graph, 3, random.Random(0))
        assert len(targets) == 1
        reduced = graph.copy()
        reduced.remove_vertex(targets[0])
        from repro.graph.algorithms.components import is_strongly_connected
        assert not is_strongly_connected(reduced)

    def test_min_cut_strategy_on_cycle(self, ring10):
        """A bidirectional cycle has vertex connectivity 2: the cut has 2 nodes."""
        targets = min_cut_strategy(ring10, 5, random.Random(0))
        assert len(targets) == 2
        reduced = ring10.copy()
        for vertex in targets:
            reduced.remove_vertex(vertex)
        from repro.graph.algorithms.components import is_strongly_connected
        assert not is_strongly_connected(reduced)

    def test_min_cut_strategy_tiny_graph_falls_back(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        assert min_cut_strategy(graph, 1, random.Random(0)) == []


class TestAdversary:
    def test_named_strategies(self, circulant12):
        for name in ("random", "highest-degree", "lowest-degree", "min-cut"):
            adversary = Adversary(budget=2, strategy=name, seed=1)
            targets = adversary.choose_targets(circulant12)
            assert len(targets) <= 2
            assert adversary.strategy_name == name

    def test_custom_callable_strategy(self, circulant12):
        adversary = Adversary(budget=2, strategy=lambda g, b, r: g.vertices()[:b])
        assert adversary.choose_targets(circulant12) == [0, 1]

    def test_zero_budget(self, circulant12):
        assert Adversary(budget=0).choose_targets(circulant12) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Adversary(budget=-1)
        with pytest.raises(ValueError):
            Adversary(budget=1, strategy="nuclear")
        with pytest.raises(TypeError):
            Adversary(budget=1, strategy=42)

    def test_empty_graph(self):
        assert Adversary(budget=3).choose_targets(DiGraph()) == []
