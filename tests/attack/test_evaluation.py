"""Tests for the attack evaluation and the empirical Equation-2 validation."""

import random

from hypothesis import given, settings, strategies as st

from repro.attack.adversary import Adversary
from repro.attack.evaluation import evaluate_attack, resilience_curve
from repro.core.vertex_connectivity import global_vertex_connectivity
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_graph


class TestEvaluateAttack:
    def test_attack_below_connectivity_never_disconnects(self, circulant12):
        """Equation 2: budgets below kappa cannot disconnect the survivors."""
        kappa = global_vertex_connectivity(circulant12)  # 4
        for strategy in ("random", "highest-degree", "lowest-degree", "min-cut"):
            adversary = Adversary(budget=kappa - 1, strategy=strategy, seed=3)
            outcome = evaluate_attack(circulant12, adversary,
                                      pre_attack_connectivity=kappa)
            assert outcome.connected, strategy
            assert outcome.predicted_safe
            assert outcome.prediction_held

    def test_min_cut_attack_at_connectivity_disconnects(self, ring10):
        """Spending exactly kappa nodes on a minimum cut splits the cycle."""
        kappa = global_vertex_connectivity(ring10)  # 2
        adversary = Adversary(budget=kappa, strategy="min-cut", seed=0)
        outcome = evaluate_attack(ring10, adversary, pre_attack_connectivity=kappa)
        assert not outcome.predicted_safe
        assert not outcome.connected
        assert outcome.largest_component_fraction < 1.0
        assert outcome.prediction_held  # "unsafe" predictions are never falsified

    def test_survivor_counts(self, circulant12):
        adversary = Adversary(budget=3, strategy="random", seed=5)
        outcome = evaluate_attack(circulant12, adversary)
        assert outcome.survivors == 12 - 3
        assert len(outcome.compromised) == 3
        assert outcome.predicted_safe is None
        assert outcome.prediction_held is None

    def test_attack_wiping_out_network(self):
        graph = complete_graph(3)
        outcome = evaluate_attack(graph, Adversary(budget=3, strategy="random"))
        assert outcome.survivors == 0
        assert not outcome.connected

    def test_single_survivor_counts_as_connected(self):
        graph = complete_graph(3)
        outcome = evaluate_attack(graph, Adversary(budget=2, strategy="random"))
        assert outcome.survivors == 1
        assert outcome.connected


class TestResilienceCurve:
    def test_curve_shape(self, circulant12):
        rows = resilience_curve(circulant12, budgets=[0, 1, 3, 6], strategy="random",
                                trials=4, seed=2)
        assert [row["budget"] for row in rows] == [0, 1, 3, 6]
        # Below the connectivity (4) survival is guaranteed.
        assert rows[0]["survival_rate"] == 1.0
        assert rows[1]["survival_rate"] == 1.0
        assert rows[2]["survival_rate"] == 1.0
        assert all(row["connectivity"] == 4 for row in rows)
        assert rows[0]["predicted_safe"] and not rows[3]["predicted_safe"]

    def test_min_cut_curve_collapses_at_kappa(self, ring10):
        rows = resilience_curve(ring10, budgets=[1, 2], strategy="min-cut", trials=2)
        assert rows[0]["survival_rate"] == 1.0
        assert rows[1]["survival_rate"] < 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=10_000))
def test_equation2_holds_on_random_regular_graphs(n, seed):
    """Property: for random graphs, any attack with budget < kappa leaves the
    survivors strongly connected (Equation 2)."""
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < 0.5:
                graph.add_edge(i, j)
    kappa = global_vertex_connectivity(graph)
    if kappa <= 1:
        return
    adversary = Adversary(budget=kappa - 1, strategy="random", seed=seed)
    outcome = evaluate_attack(graph, adversary, pre_attack_connectivity=kappa)
    assert outcome.connected
