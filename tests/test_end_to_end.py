"""End-to-end qualitative checks of the reproduction pipeline.

These tests exercise the whole stack (simulation → snapshot → Even
transformation → max flow → resilience) on the tiny profile and assert the
*relationships* the paper reports, not absolute numbers.
"""

import pytest

from repro.core.resilience import ResilienceModel
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(profile="tiny", seed=13)


class TestQualitativeRelations:
    def test_connectivity_tracks_bucket_size(self, runner):
        """Section 6: 'the network connectivity strongly correlates with k'."""
        small_k = runner.run(get_scenario("E").with_overrides(bucket_size=3))
        large_k = runner.run(get_scenario("E").with_overrides(bucket_size=8))
        assert large_k.churn_mean_minimum() >= small_k.churn_mean_minimum()

    def test_average_connectivity_at_least_minimum(self, runner):
        result = runner.run(get_scenario("E").with_overrides(bucket_size=5))
        for sample in result.series.samples:
            assert sample.average >= sample.minimum - 1e-9

    def test_resilience_follows_equation_2(self, runner):
        result = runner.run(get_scenario("E").with_overrides(bucket_size=5))
        final = result.series.final_sample().report
        assert final.resilience == max(final.minimum - 1, 0)
        model = ResilienceModel(attacker_budget=final.resilience)
        if final.minimum > 0:
            assert model.is_satisfied_by(final.minimum)

    def test_snapshot_analysis_consistent_with_series(self, runner):
        """Re-analyzing a kept snapshot reproduces the recorded connectivity."""
        local_runner = ExperimentRunner(profile="tiny", seed=21, keep_snapshots=True)
        result = local_runner.run(get_scenario("J").with_overrides(bucket_size=5))
        analyzer = local_runner.build_analyzer()
        last_snapshot = result.snapshots[-1]
        fresh = analyzer.analyze_snapshot(last_snapshot.routing_tables)
        recorded = result.series.final_sample().report
        assert fresh.minimum == recorded.minimum
        assert fresh.vertex_count == recorded.vertex_count

    def test_symmetry_ratio_close_to_undirected(self, runner):
        """Section 5.2: connectivity graphs are 'very close to being undirected'."""
        result = runner.run(get_scenario("E").with_overrides(bucket_size=8))
        final = result.series.final_sample().report
        assert final.symmetry_ratio > 0.6

    def test_stabilized_connectivity_reaches_k_for_adequate_k(self, runner):
        """After stabilisation the minimum connectivity is roughly k (k >= 10 advised).

        At tiny scale (16 nodes) a bucket size of 5 is 'adequate' in the
        paper's sense (well below the network size), so the stabilised
        minimum should be at least k.
        """
        result = runner.run(get_scenario("C").with_overrides(bucket_size=5))
        assert result.stabilized_minimum() >= 5
