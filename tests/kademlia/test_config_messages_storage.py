"""Tests for the Kademlia configuration, message types and data store."""

import pytest

from repro.kademlia.config import KademliaConfig
from repro.kademlia.messages import (
    FindNodeRequest,
    FindNodeResponse,
    FindValueResponse,
    PingRequest,
    PongResponse,
    StoreRequest,
)
from repro.kademlia.storage import DataStore


class TestKademliaConfig:
    def test_paper_defaults(self):
        config = KademliaConfig.paper_default()
        assert config.bit_length == 160
        assert config.bucket_size == 20
        assert config.alpha == 3
        assert config.staleness_limit == 5

    def test_id_space_size(self):
        assert KademliaConfig(bit_length=8).id_space_size == 256

    @pytest.mark.parametrize(
        "field, value",
        [
            ("bit_length", 0),
            ("bucket_size", 0),
            ("alpha", 0),
            ("staleness_limit", 0),
            ("refresh_interval_minutes", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            KademliaConfig(**{field: value})

    def test_with_overrides(self):
        config = KademliaConfig().with_overrides(bucket_size=5, alpha=5)
        assert config.bucket_size == 5
        assert config.alpha == 5
        assert config.bit_length == 160

    def test_to_dict_round_trips_fields(self):
        config = KademliaConfig(bucket_size=10)
        data = config.to_dict()
        assert data["bucket_size"] == 10
        assert set(data) == {
            "bit_length", "bucket_size", "alpha", "staleness_limit",
            "refresh_interval_minutes", "learn_from_responses",
            "refresh_all_buckets", "bootstrap_reseed",
        }

    def test_immutable(self):
        config = KademliaConfig()
        with pytest.raises(AttributeError):
            config.bucket_size = 5  # type: ignore[misc]


class TestMessages:
    def test_find_value_found_flag(self):
        hit = FindValueResponse(responder_id=1, value="data", contacts=())
        miss = FindValueResponse(responder_id=1, value=None, contacts=(2, 3))
        assert hit.found
        assert not miss.found

    def test_messages_are_hashable_and_frozen(self):
        request = FindNodeRequest(target_id=5)
        assert hash(request) == hash(FindNodeRequest(target_id=5))
        with pytest.raises(AttributeError):
            request.target_id = 6  # type: ignore[misc]

    def test_response_payloads(self):
        assert PongResponse(responder_id=3).responder_id == 3
        assert FindNodeResponse(responder_id=1, contacts=(1, 2)).contacts == (1, 2)
        assert StoreRequest(key_id=9, value="x").key_id == 9
        assert PingRequest() == PingRequest()


class TestDataStore:
    def test_put_get(self):
        store = DataStore()
        store.put(5, "value", time=2.0)
        assert store.get(5) == "value"
        assert store.has(5)
        assert store.stored_at(5) == 2.0
        assert len(store) == 1

    def test_missing_key(self):
        store = DataStore()
        assert store.get(1) is None
        assert not store.has(1)
        assert store.stored_at(1) is None

    def test_overwrite(self):
        store = DataStore()
        store.put(1, "a", time=1.0)
        store.put(1, "b", time=2.0)
        assert store.get(1) == "b"
        assert store.stored_at(1) == 2.0
        assert store.keys() == [1]
