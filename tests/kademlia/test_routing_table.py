"""Tests for the routing table."""

import random

from hypothesis import given, settings, strategies as st

from repro.kademlia.config import KademliaConfig
from repro.kademlia.node_id import bucket_index, xor_distance
from repro.kademlia.routing_table import RoutingTable


def make_table(owner=0, k=4, b=16, s=2):
    config = KademliaConfig(bit_length=b, bucket_size=k, alpha=3, staleness_limit=s)
    return RoutingTable(owner, config)


class TestAddRemove:
    def test_owner_never_added(self):
        table = make_table(owner=7)
        assert not table.add_contact(7, time=0.0)
        assert table.contact_count() == 0

    def test_add_and_contains(self):
        table = make_table()
        assert table.add_contact(9, time=0.0)
        assert table.contains(9)
        assert table.contact_count() == 1

    def test_contacts_routed_to_correct_bucket(self):
        table = make_table(owner=0)
        table.add_contact(0b1, 0.0)       # bucket 0
        table.add_contact(0b100, 0.0)     # bucket 2
        occupancy = table.occupancy_by_bucket()
        assert occupancy == {0: 1, 2: 1}

    def test_bucket_capacity_enforced_per_bucket(self):
        table = make_table(owner=0, k=2, b=8)
        # Bucket 7 covers ids in [128, 255]; only 2 of these 4 fit.
        added = [table.add_contact(value, 0.0) for value in (128, 129, 130, 131)]
        assert added.count(True) == 2
        # A contact for another bucket still fits.
        assert table.add_contact(1, 0.0)

    def test_remove_contact(self):
        table = make_table()
        table.add_contact(5, 0.0)
        assert table.remove_contact(5)
        assert not table.remove_contact(5)
        assert not table.remove_contact(table.owner_id)

    def test_record_failure_drops_after_staleness_limit(self):
        table = make_table(s=2)
        table.add_contact(5, 0.0)
        assert not table.record_failure(5)
        assert table.record_failure(5)
        assert not table.contains(5)

    def test_record_success_refreshes(self):
        table = make_table(s=2)
        table.add_contact(5, 0.0)
        table.record_failure(5)
        assert table.record_success(5, time=2.0)
        # The failure streak is reset, so two more failures are needed again.
        assert not table.record_failure(5)
        assert table.record_failure(5)


class TestClosestContacts:
    def test_closest_sorted_by_xor_distance(self):
        table = make_table(owner=0, k=8)
        for value in (1, 2, 3, 12, 13, 40, 41):
            table.add_contact(value, 0.0)
        closest = table.closest_contacts(target_id=13, count=3)
        assert closest == [13, 12, 9] or closest[0] == 13
        distances = [xor_distance(c, 13) for c in closest]
        assert distances == sorted(distances)

    def test_closest_defaults_to_bucket_size(self):
        table = make_table(owner=0, k=3)
        for value in range(1, 10):
            table.add_contact(value, 0.0)
        assert len(table.closest_contacts(target_id=1)) == 3

    def test_closest_with_fewer_contacts_than_count(self):
        table = make_table()
        table.add_contact(1, 0.0)
        assert table.closest_contacts(5, count=10) == [1]

    def test_cache_consistency_after_mutations(self):
        """The cached flat contact list must track adds, removals and staleness drops."""
        table = make_table(owner=0, k=4, s=1)
        for value in (1, 2, 3, 4):
            table.add_contact(value, 0.0)
        assert sorted(table.contact_ids()) == [1, 2, 3, 4]
        table.remove_contact(2)
        assert sorted(table.contact_ids()) == [1, 3, 4]
        table.record_failure(3)  # s=1: dropped immediately
        assert sorted(table.contact_ids()) == [1, 4]
        table.add_contact(9, 1.0)
        assert sorted(table.contact_ids()) == [1, 4, 9]
        assert sorted(table.closest_contacts(0, count=10)) == [1, 4, 9]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=2**16 - 1), unique=True,
                    min_size=1, max_size=40),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_closest_matches_brute_force(self, contacts, target):
        table = make_table(owner=0, k=64)
        for contact in contacts:
            table.add_contact(contact, 0.0)
        expected = sorted(table.contact_ids(), key=lambda c: c ^ target)[:5]
        assert table.closest_contacts(target, count=5) == expected


class TestRefreshTargets:
    def test_refresh_targets_fall_into_their_buckets(self):
        table = make_table(owner=0b1010, k=4, b=12)
        for value in (1, 7, 100, 2000):
            table.add_contact(value, 0.0)
        rng = random.Random(0)
        targets = table.refresh_targets(rng)
        # One target per non-empty bucket plus one random exploration id.
        assert len(targets) == len(table.occupancy_by_bucket()) + 1

    def test_refresh_all_buckets_mode(self):
        config = KademliaConfig(bit_length=12, bucket_size=4, refresh_all_buckets=True)
        table = RoutingTable(0, config)
        targets = table.refresh_targets(random.Random(0))
        assert len(targets) == 12
        for index, target in enumerate(targets):
            assert bucket_index(0, target) == index
