"""Tests for identifiers and the XOR metric."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kademlia.node_id import (
    bucket_index,
    closest,
    generate_node_id,
    id_from_key,
    random_id_in_bucket,
    sort_by_distance,
    xor_distance,
)


class TestXorDistance:
    def test_identity(self):
        assert xor_distance(5, 5) == 0

    def test_symmetry(self):
        assert xor_distance(3, 10) == xor_distance(10, 3)

    def test_known_value(self):
        assert xor_distance(0b1100, 0b1010) == 0b0110

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            xor_distance(-1, 3)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**160 - 1),
        st.integers(min_value=0, max_value=2**160 - 1),
        st.integers(min_value=0, max_value=2**160 - 1),
    )
    def test_triangle_inequality(self, a, b, c):
        """XOR distance satisfies the triangle inequality (it is a metric)."""
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)


class TestBucketIndex:
    def test_adjacent_ids(self):
        assert bucket_index(0b1000, 0b1001) == 0

    def test_highest_bucket_covers_half_the_space(self):
        assert bucket_index(0, 1 << 159) == 159

    def test_bucket_ranges(self):
        own = 0
        for index in (0, 1, 5, 20):
            low, high = 1 << index, (1 << (index + 1)) - 1
            assert bucket_index(own, low) == index
            assert bucket_index(own, high) == index

    def test_same_id_rejected(self):
        with pytest.raises(ValueError):
            bucket_index(7, 7)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_index_matches_distance_band(self, own, other):
        """2**i <= dist < 2**(i+1) for the returned index (paper Section 4.1)."""
        if own == other:
            return
        index = bucket_index(own, other)
        distance = xor_distance(own, other)
        assert (1 << index) <= distance < (1 << (index + 1))


class TestIdGeneration:
    def test_generate_within_space(self):
        rng = random.Random(0)
        for _ in range(50):
            assert 0 <= generate_node_id(16, rng) < 2**16

    def test_generate_respects_exclusions(self):
        rng = random.Random(0)
        exclude = set(range(15))
        for _ in range(20):
            assert generate_node_id(4, rng, exclude=exclude) == 15

    def test_exhausted_space_rejected(self):
        with pytest.raises(ValueError):
            generate_node_id(1, random.Random(0), exclude={0, 1})

    def test_id_from_key_deterministic(self):
        assert id_from_key("object-1", 160) == id_from_key("object-1", 160)
        assert id_from_key("object-1", 160) != id_from_key("object-2", 160)

    def test_id_from_key_respects_bit_length(self):
        assert 0 <= id_from_key("x", 8) < 256

    def test_random_id_in_bucket(self):
        rng = random.Random(3)
        own = 0b10110010
        for index in range(8):
            candidate = random_id_in_bucket(own, index, 8, rng)
            assert bucket_index(own, candidate) == index

    def test_random_id_in_bucket_bad_index(self):
        with pytest.raises(ValueError):
            random_id_in_bucket(0, 8, 8)


class TestSorting:
    def test_sort_by_distance(self):
        assert sort_by_distance([1, 2, 3, 4], target=3) == [3, 2, 1, 4]

    def test_closest_truncates(self):
        assert closest([1, 2, 3, 4], target=3, count=2) == [3, 2]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), unique=True, min_size=1),
           st.integers(min_value=0, max_value=255))
    def test_sort_is_a_permutation_in_distance_order(self, ids, target):
        ordered = sort_by_distance(ids, target)
        assert sorted(ordered) == sorted(ids)
        distances = [i ^ target for i in ordered]
        assert distances == sorted(distances)
