"""Tests for the Kademlia protocol handler and iterative lookup.

These tests build small in-memory networks directly (no experiment runner)
so individual protocol behaviours can be asserted precisely.
"""

import random

import pytest

from repro.kademlia.config import KademliaConfig
from repro.kademlia.messages import (
    FindNodeRequest,
    FindNodeResponse,
    FindValueRequest,
    FindValueResponse,
    PingRequest,
    PongResponse,
    StoreRequest,
    StoreResponse,
)
from repro.kademlia.node_id import sort_by_distance
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


def build_network(node_ids, config=None, loss=0.0, seed=0):
    """Wire up a network of KademliaProtocol nodes with full routing knowledge disabled."""
    config = config or KademliaConfig(bit_length=16, bucket_size=4, alpha=2,
                                      staleness_limit=1)
    network = Network()
    transport = Transport(network, loss_probability=loss, rng=random.Random(seed))
    clock = {"now": 0.0}
    protocols = {}
    for node_id in node_ids:
        node = SimNode(node_id)
        protocol = KademliaProtocol(node_id, config)
        protocol.bind(transport, lambda: clock["now"])
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        protocols[node_id] = protocol
    return network, transport, protocols, clock


class TestHandleRequest:
    def test_ping_returns_pong_and_learns_sender(self):
        _, _, protocols, _ = build_network([1, 2])
        response = protocols[2].handle_request(1, PingRequest())
        assert isinstance(response, PongResponse)
        assert response.responder_id == 2
        assert protocols[2].routing_table.contains(1)

    def test_find_node_returns_closest_contacts(self):
        _, _, protocols, _ = build_network([1, 2])
        for contact in (10, 11, 12, 13):
            protocols[2].routing_table.add_contact(contact, 0.0)
        response = protocols[2].handle_request(1, FindNodeRequest(target_id=10))
        assert isinstance(response, FindNodeResponse)
        assert response.contacts[0] == 10
        assert len(response.contacts) <= protocols[2].config.bucket_size

    def test_store_and_find_value(self):
        _, _, protocols, _ = build_network([1, 2])
        store_response = protocols[2].handle_request(1, StoreRequest(key_id=7, value="v"))
        assert isinstance(store_response, StoreResponse) and store_response.stored
        find_response = protocols[2].handle_request(1, FindValueRequest(key_id=7))
        assert isinstance(find_response, FindValueResponse)
        assert find_response.found and find_response.value == "v"

    def test_find_value_miss_returns_contacts(self):
        _, _, protocols, _ = build_network([1, 2])
        protocols[2].routing_table.add_contact(9, 0.0)
        response = protocols[2].handle_request(1, FindValueRequest(key_id=42))
        assert not response.found
        assert 9 in response.contacts

    def test_unknown_request_type_unanswered(self):
        _, _, protocols, _ = build_network([1, 2])
        assert protocols[2].handle_request(1, object()) is None


class TestClientOperations:
    def test_unbound_protocol_rejects_operations(self):
        protocol = KademliaProtocol(1, KademliaConfig(bit_length=8))
        with pytest.raises(RuntimeError, match="not bound"):
            protocol.lookup(3)

    def test_ping_success_and_failure(self):
        network, _, protocols, _ = build_network([1, 2])
        assert protocols[1].ping(2)
        assert protocols[1].routing_table.contains(2)
        network.remove_node(2, time=0.0)
        assert not protocols[1].ping(2)
        # staleness limit 1: the dead contact is dropped immediately.
        assert not protocols[1].routing_table.contains(2)

    def test_join_via_bootstrap_populates_tables(self):
        _, _, protocols, _ = build_network([1, 2, 3])
        # 2 and 3 know each other; 1 joins via 2.
        protocols[2].routing_table.add_contact(3, 0.0)
        protocols[3].routing_table.add_contact(2, 0.0)
        result = protocols[1].join(bootstrap_id=2)
        assert result.succeeded
        assert protocols[1].routing_table.contains(2)
        # The bootstrap node learned about the joining node.
        assert protocols[2].routing_table.contains(1)

    def test_join_without_bootstrap_is_harmless(self):
        _, _, protocols, _ = build_network([1])
        result = protocols[1].join(bootstrap_id=None)
        assert not result.succeeded
        assert protocols[1].routing_table.contact_count() == 0

    def test_lookup_finds_existing_nodes(self):
        node_ids = [1, 2, 3, 4, 5, 6]
        _, _, protocols, _ = build_network(node_ids)
        # Everyone knows node 1; node 1 knows everyone: a star.
        for node_id in node_ids[1:]:
            protocols[1].routing_table.add_contact(node_id, 0.0)
            protocols[node_id].routing_table.add_contact(1, 0.0)
        result = protocols[2].lookup(6)
        assert 6 in result.contacted
        # Lookup counters updated.
        assert protocols[2].lookups_performed == 1

    def test_disseminate_stores_on_closest_nodes(self):
        node_ids = [1, 2, 3, 4, 5]
        _, _, protocols, _ = build_network(node_ids)
        for a in node_ids:
            for b in node_ids:
                if a != b:
                    protocols[a].routing_table.add_contact(b, 0.0)
        key = 6
        locate, stored = protocols[1].disseminate(key, value="payload")
        assert stored >= 1
        expected_holders = sort_by_distance(locate.contacted, key)
        assert any(protocols[h].storage.has(key) for h in expected_holders)

    def test_retrieve_round_trip(self):
        node_ids = [1, 2, 3, 4, 5]
        _, _, protocols, _ = build_network(node_ids)
        for a in node_ids:
            for b in node_ids:
                if a != b:
                    protocols[a].routing_table.add_contact(b, 0.0)
        protocols[1].disseminate(9, value="hello")
        assert protocols[2].retrieve(9) == "hello"

    def test_retrieve_missing_value(self):
        _, _, protocols, _ = build_network([1, 2])
        protocols[1].routing_table.add_contact(2, 0.0)
        assert protocols[1].retrieve(12) is None

    def test_bucket_refresh_discovers_contacts(self):
        node_ids = [1, 2, 3, 4]
        _, _, protocols, _ = build_network(node_ids)
        # 1 only knows 2; 2 knows 3; 3 knows 4.
        protocols[1].routing_table.add_contact(2, 0.0)
        protocols[2].routing_table.add_contact(3, 0.0)
        protocols[3].routing_table.add_contact(4, 0.0)
        before = protocols[1].routing_table.contact_count()
        protocols[1].bucket_refresh(random.Random(0))
        after = protocols[1].routing_table.contact_count()
        assert after >= before
        assert protocols[1].refreshes_performed == 1

    def test_lookup_failure_records_staleness(self):
        network, _, protocols, _ = build_network([1, 2])
        protocols[1].routing_table.add_contact(2, 0.0)
        network.remove_node(2, time=0.0)
        result = protocols[1].lookup(2)
        assert result.failures >= 1
        assert not protocols[1].routing_table.contains(2)

    def test_routing_table_snapshot_matches_contacts(self):
        _, _, protocols, _ = build_network([1, 2, 3])
        protocols[1].routing_table.add_contact(2, 0.0)
        protocols[1].routing_table.add_contact(3, 0.0)
        assert sorted(protocols[1].routing_table_snapshot()) == [2, 3]


class TestReachabilityAndReseeding:
    def test_rpc_success_marks_ever_connected_and_adds_contact(self):
        _, _, protocols, _ = build_network([1, 2])
        assert not protocols[1].ever_connected
        ok, response = protocols[1].rpc(2, PingRequest())
        assert ok and isinstance(response, PongResponse)
        assert protocols[1].ever_connected
        assert protocols[1].routing_table.contains(2)

    def test_rpc_failure_does_not_mark_ever_connected(self):
        network, _, protocols, _ = build_network([1, 2])
        protocols[1].routing_table.add_contact(2, 0.0)
        network.remove_node(2, time=0.0)
        ok, _ = protocols[1].rpc(2, PingRequest())
        assert not ok
        assert not protocols[1].ever_connected
        # staleness limit 1: the unreachable contact was evicted.
        assert not protocols[1].routing_table.contains(2)

    def test_incoming_request_does_not_mark_ever_connected(self):
        _, _, protocols, _ = build_network([1, 2])
        protocols[2].handle_request(1, PingRequest())
        # Node 2 learned node 1 but has not verified it can reach anyone.
        assert protocols[2].routing_table.contains(1)
        assert not protocols[2].ever_connected

    def test_join_remembers_bootstrap_contact(self):
        _, _, protocols, _ = build_network([1, 2])
        protocols[1].join(bootstrap_id=2)
        assert protocols[1].bootstrap_id == 2

    def test_lookup_reseeds_bootstrap_after_table_emptied(self):
        network, _, protocols, _ = build_network([1, 2, 3])
        protocols[2].routing_table.add_contact(3, 0.0)
        protocols[1].join(bootstrap_id=2)
        assert protocols[1].ever_connected
        # Evict everything the node knows, as heavy loss with s=1 would.
        for contact in protocols[1].routing_table.contact_ids():
            protocols[1].routing_table.remove_contact(contact)
        assert protocols[1].routing_table.contact_count() == 0
        result = protocols[1].lookup(3)
        # The configured bootstrap was re-inserted and the lookup recovered.
        assert protocols[1].reseeds_performed >= 1
        assert result.succeeded
        assert protocols[1].routing_table.contains(2)

    def test_reseed_keeps_retrying_until_first_successful_round_trip(self):
        network, _, protocols, _ = build_network([1, 2, 3])
        # Node 2's bootstrap (node 1) is unreachable at join time.
        network.remove_node(1, time=0.0)
        protocols[2].join(bootstrap_id=1)
        assert not protocols[2].ever_connected
        # Node 3 bootstraps *from* node 2, so node 2's table is not empty —
        # but node 2 still has never reached the network it was configured
        # to join.
        protocols[3].join(bootstrap_id=2)
        assert protocols[2].routing_table.contains(3)
        # Node 1 comes back; node 2's next lookup retries the configured
        # bootstrap and merges the island with the main network.
        node_one = network.get(1)
        node_one.alive = True
        node_one.left_at = None
        protocols[2].lookup(protocols[2].node_id)
        assert protocols[2].ever_connected
        assert protocols[2].routing_table.contains(1)
        assert protocols[1].routing_table.contains(2)

    def test_no_reseed_without_bootstrap(self):
        _, _, protocols, _ = build_network([1])
        protocols[1].lookup(5)
        assert protocols[1].reseeds_performed == 0

    def test_connected_node_with_contacts_never_reseeds(self):
        _, _, protocols, _ = build_network([1, 2, 3])
        protocols[2].routing_table.add_contact(3, 0.0)
        protocols[1].join(bootstrap_id=2)
        reseeds_before = protocols[1].reseeds_performed
        for _ in range(3):
            protocols[1].lookup(3)
        assert protocols[1].reseeds_performed == reseeds_before


class TestLookupWithLoss:
    def test_lookup_under_heavy_loss_still_terminates(self):
        node_ids = list(range(1, 11))
        _, _, protocols, _ = build_network(node_ids, loss=0.4, seed=3)
        for a in node_ids:
            for b in node_ids:
                if a != b:
                    protocols[a].routing_table.add_contact(b, 0.0)
        result = protocols[1].lookup(10)
        assert result.queried >= 1
        assert result.failures >= 0  # terminates without exception

    def test_alpha_limits_parallel_batch(self):
        config = KademliaConfig(bit_length=16, bucket_size=8, alpha=1, staleness_limit=1)
        node_ids = [1, 2, 3, 4]
        _, _, protocols, _ = build_network(node_ids, config=config)
        for node_id in node_ids[1:]:
            protocols[1].routing_table.add_contact(node_id, 0.0)
        result = protocols[1].lookup(4)
        # With alpha=1 each round queries a single node, so the number of
        # rounds equals the number of queried nodes.
        assert result.rounds == result.queried
