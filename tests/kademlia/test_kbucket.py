"""Tests for the k-bucket insertion/eviction policy."""

from repro.kademlia.contact import Contact
from repro.kademlia.kbucket import KBucket


class TestContact:
    def test_success_resets_failures(self):
        contact = Contact(node_id=1)
        contact.record_failure()
        contact.record_failure()
        assert contact.consecutive_failures == 2
        contact.record_success(5.0)
        assert contact.consecutive_failures == 0
        assert contact.last_seen == 5.0

    def test_staleness_threshold(self):
        contact = Contact(node_id=1)
        for _ in range(4):
            contact.record_failure()
        assert not contact.is_stale(5)
        contact.record_failure()
        assert contact.is_stale(5)


class TestKBucket:
    def test_add_until_full(self):
        bucket = KBucket(index=0, capacity=3)
        for node_id in (1, 2, 3):
            assert bucket.add(node_id, time=0.0, staleness_limit=1)
        assert bucket.is_full
        assert len(bucket) == 3

    def test_full_bucket_rejects_new_contact(self):
        bucket = KBucket(index=0, capacity=2)
        bucket.add(1, 0.0, 1)
        bucket.add(2, 0.0, 1)
        assert not bucket.add(3, 1.0, 1)
        assert 3 not in bucket

    def test_existing_contact_is_refreshed_not_duplicated(self):
        bucket = KBucket(index=0, capacity=2)
        bucket.add(1, 0.0, 1)
        bucket.add(2, 1.0, 1)
        assert bucket.add(1, 2.0, 1)
        assert len(bucket) == 2
        # Contact 1 is now most recently seen: the oldest is 2.
        assert bucket.oldest().node_id == 2

    def test_stale_contact_evicted_for_new_one(self):
        bucket = KBucket(index=0, capacity=2)
        bucket.add(1, 0.0, staleness_limit=1)
        bucket.add(2, 0.0, staleness_limit=1)
        # Contact 1 fails once; with s=1 it is removed immediately, but here
        # we only mark it stale through the contact record to exercise the
        # full-bucket replacement path.
        bucket.get(1).record_failure()
        assert bucket.add(3, 1.0, staleness_limit=1)
        assert 3 in bucket
        assert 1 not in bucket

    def test_record_failure_removes_at_staleness_limit(self):
        bucket = KBucket(index=0, capacity=2)
        bucket.add(1, 0.0, staleness_limit=3)
        assert not bucket.record_failure(1, staleness_limit=3)
        assert not bucket.record_failure(1, staleness_limit=3)
        assert bucket.record_failure(1, staleness_limit=3)
        assert 1 not in bucket

    def test_record_failure_unknown_contact(self):
        bucket = KBucket(index=0, capacity=2)
        assert not bucket.record_failure(99, staleness_limit=1)

    def test_record_success_moves_to_most_recent(self):
        bucket = KBucket(index=0, capacity=3)
        bucket.add(1, 0.0, 1)
        bucket.add(2, 0.0, 1)
        assert bucket.record_success(1, time=5.0)
        assert bucket.contact_ids() == [2, 1]
        assert not bucket.record_success(42, time=5.0)

    def test_remove(self):
        bucket = KBucket(index=0, capacity=2)
        bucket.add(1, 0.0, 1)
        assert bucket.remove(1)
        assert not bucket.remove(1)

    def test_least_recently_seen_order(self):
        bucket = KBucket(index=0, capacity=5)
        for node_id in (1, 2, 3):
            bucket.add(node_id, 0.0, 1)
        bucket.touch(1, time=3.0)
        assert bucket.contact_ids() == [2, 3, 1]
        assert bucket.oldest().node_id == 2

    def test_empty_bucket(self):
        bucket = KBucket(index=0, capacity=2)
        assert bucket.oldest() is None
        assert bucket.contacts() == []
        assert not bucket.is_full
