"""Property test: mean per-lookup virtual-time latency is O(log N), per overlay.

Every overlay's core scaling claim — an iterative lookup converges in
``O(log N)`` parallel query rounds (Kademlia via XOR-prefix halving,
Chord via power-of-two fingers, Pastry via per-digit prefix hops) —
surfaces in the observability layer as the synthetic virtual-time latency
``rounds * RTT + failures * timeout_penalty``
(:meth:`LookupResult.virtual_latency`, constants in
:mod:`repro.obs.virtualtime`).  This suite builds loss-free networks of
increasing size directly through the overlay seam (no simulator event
loop; the protocol layer is all the lookup touches) and asserts the
latency bound with per-protocol headroom, plus the sublinearity that
separates O(log N) from O(N).
"""

import math
import random

import pytest

from repro import obs
from repro.kademlia.node_id import generate_node_id
from repro.obs.virtualtime import (
    LOOKUP_RTT,
    LOOKUP_TIMEOUT_PENALTY,
    lookup_virtual_latency,
)
from repro.overlay import LookupResult, get_overlay, overlay_names
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport

#: Latency-bound headroom per protocol: mean latency must stay below
#: ``slack * log2(N) * RTT``.  Joins populate tables well enough that the
#: observed constants are close to 1 (measured maxima across the size
#: grid: kademlia 1.24, chord 1.30, pastry 1.24); the slacks absorb
#: identifier-distribution variance across seeds without letting linear
#: growth pass.  Chord routes on one-sided clockwise distance, so its
#: frontier has less directional diversity than Kademlia's XOR balls or
#: Pastry's digit rows and it converges a shade slower — hence the
#: slightly larger constant.
PROTOCOL_SLACK = {"kademlia": 2.5, "chord": 3.0, "pastry": 2.75}

BIT_LENGTH = 64

SIZE_GRID = [(10, 40), (50, 40), (200, 30), (2000, 15)]


def build_network(protocol_name: str, size: int, rng: random.Random):
    """A loss-free network of ``size`` joined nodes; returns the protocols.

    Built entirely through the overlay seam — registry descriptor for the
    configuration and factory, :meth:`OverlayProtocol.bind` /
    :meth:`~OverlayProtocol.join` for wiring — so this suite exercises
    exactly the surface the simulation layer relies on.
    """
    descriptor = get_overlay(protocol_name)
    config = descriptor.build_config(
        bit_length=BIT_LENGTH,
        bucket_size=20,
        alpha=3,
        staleness_limit=1,
        bootstrap_reseed=True,
    )
    factory = descriptor.protocol_factory()
    network = Network()
    transport = Transport(
        network, loss_probability=0.0, rng=rng, protocol_name=protocol_name
    )
    protocols = []
    used = set()
    for _ in range(size):
        node_id = generate_node_id(BIT_LENGTH, rng, exclude=used)
        used.add(node_id)
        protocol = factory(node_id, config)
        protocol.bind(transport, lambda: 0.0)
        node = SimNode(node_id)
        node.register_protocol(protocol_name, protocol)
        network.add_node(node)
        bootstrap = rng.choice(protocols).node_id if protocols else None
        protocol.join(bootstrap)
        protocols.append(protocol)
    return protocols


def mean_lookup_latency(
    protocol_name: str, size: int, lookups: int, seed: int
) -> float:
    rng = random.Random(seed)
    protocols = build_network(protocol_name, size, rng)
    total = 0.0
    for _ in range(lookups):
        origin = rng.choice(protocols)
        target = generate_node_id(BIT_LENGTH, rng)
        result = origin.lookup(target)
        assert result.succeeded
        total += lookup_virtual_latency(result)
    return total / lookups


class TestVirtualLatencyArithmetic:
    def test_latency_is_rounds_plus_timeout_penalties(self):
        result = LookupResult(target_id=1, rounds=3, failures=2)
        assert result.virtual_latency(rtt=1.0, timeout_penalty=3.0) == 9.0
        assert lookup_virtual_latency(result) == (
            3 * LOOKUP_RTT + 2 * LOOKUP_TIMEOUT_PENALTY
        )

    @pytest.mark.parametrize("protocol", overlay_names())
    def test_loss_free_lookup_has_no_timeout_component(self, protocol):
        rng = random.Random(7)
        protocols = build_network(protocol, 30, rng)
        result = protocols[0].lookup(generate_node_id(BIT_LENGTH, rng))
        assert result.failures == 0
        assert lookup_virtual_latency(result) == result.rounds * LOOKUP_RTT


class TestLogarithmicScaling:
    @pytest.mark.parametrize("protocol", overlay_names())
    @pytest.mark.parametrize("size,lookups", SIZE_GRID)
    def test_mean_latency_within_log_bound(self, protocol, size, lookups):
        mean = mean_lookup_latency(protocol, size, lookups, seed=size)
        bound = PROTOCOL_SLACK[protocol] * math.log2(size) * LOOKUP_RTT
        assert mean <= bound, (
            f"{protocol} N={size}: mean lookup latency {mean:.2f} RTT "
            f"exceeds O(log N) bound {bound:.2f} RTT"
        )

    @pytest.mark.parametrize("protocol", overlay_names())
    def test_growth_is_sublinear(self, protocol):
        # 20x the nodes may cost at most ~double the latency — far below
        # the 20x a linear search would pay, and comfortably above the
        # log2(2000)/log2(100) ~ 1.65 ratio an ideal overlay shows.
        small = mean_lookup_latency(protocol, 100, 30, seed=101)
        large = mean_lookup_latency(protocol, 2000, 15, seed=102)
        assert large <= small * 2.0, (
            f"{protocol}: latency grew from {small:.2f} to {large:.2f} RTT "
            "(more than 2x for 20x nodes — not logarithmic)"
        )


class TestObsIntegration:
    @pytest.mark.parametrize("protocol", overlay_names())
    def test_lookup_latency_lands_in_registry_histogram(self, protocol):
        obs.disable()
        try:
            registry = obs.enable()
            rng = random.Random(11)
            protocols = build_network(protocol, 20, rng)
            before = registry.histogram(f"{protocol}.lookup.virtual_latency")
            observed_before = before.count if before is not None else 0
            result = protocols[0].lookup(generate_node_id(BIT_LENGTH, rng))
            histogram = registry.histogram(f"{protocol}.lookup.virtual_latency")
            assert histogram is not None
            assert histogram.count == observed_before + 1
            assert histogram.max >= lookup_virtual_latency(result)
            assert registry.counter(f"{protocol}.lookups") >= 1
        finally:
            obs.disable()
