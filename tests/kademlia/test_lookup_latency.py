"""Property test: mean per-lookup virtual-time latency is O(log N).

Kademlia's core scaling claim — an iterative lookup converges in
``O(log N)`` parallel query rounds — surfaces in the observability layer
as the synthetic virtual-time latency ``rounds * RTT + failures *
timeout_penalty`` (:meth:`LookupResult.virtual_latency`, constants in
:mod:`repro.obs.virtualtime`).  This suite builds loss-free networks of
increasing size directly (no simulator event loop; the protocol layer is
all the lookup touches) and asserts the latency bound with headroom, plus
the sublinearity that separates O(log N) from O(N).
"""

import math
import random

import pytest

from repro import obs
from repro.kademlia.config import KademliaConfig
from repro.kademlia.lookup import LookupResult
from repro.kademlia.protocol import KademliaProtocol
from repro.kademlia.node_id import generate_node_id
from repro.obs.virtualtime import (
    LOOKUP_RTT,
    LOOKUP_TIMEOUT_PENALTY,
    lookup_virtual_latency,
)
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport

#: Latency-bound headroom: mean latency must stay below
#: ``SLACK * log2(N) * RTT``.  Joins populate tables well enough that the
#: observed constant is close to 1; 2.5 absorbs identifier-distribution
#: variance across seeds without letting linear growth pass.
SLACK = 2.5

BIT_LENGTH = 64


def build_network(size: int, rng: random.Random):
    """A loss-free network of ``size`` joined nodes; returns the protocols."""
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=rng)
    config = KademliaConfig(bit_length=BIT_LENGTH)
    protocols = []
    used = set()
    for _ in range(size):
        node_id = generate_node_id(BIT_LENGTH, rng, exclude=used)
        used.add(node_id)
        protocol = KademliaProtocol(node_id, config)
        protocol.bind(transport, lambda: 0.0)
        node = SimNode(node_id)
        node.register_protocol("kademlia", protocol)
        network.add_node(node)
        bootstrap = rng.choice(protocols).node_id if protocols else None
        protocol.join(bootstrap)
        protocols.append(protocol)
    return protocols


def mean_lookup_latency(size: int, lookups: int, seed: int) -> float:
    rng = random.Random(seed)
    protocols = build_network(size, rng)
    total = 0.0
    for _ in range(lookups):
        origin = rng.choice(protocols)
        target = generate_node_id(BIT_LENGTH, rng)
        result = origin.lookup(target)
        assert result.succeeded
        total += lookup_virtual_latency(result)
    return total / lookups


class TestVirtualLatencyArithmetic:
    def test_latency_is_rounds_plus_timeout_penalties(self):
        result = LookupResult(target_id=1, rounds=3, failures=2)
        assert result.virtual_latency(rtt=1.0, timeout_penalty=3.0) == 9.0
        assert lookup_virtual_latency(result) == (
            3 * LOOKUP_RTT + 2 * LOOKUP_TIMEOUT_PENALTY
        )

    def test_loss_free_lookup_has_no_timeout_component(self):
        rng = random.Random(7)
        protocols = build_network(30, rng)
        result = protocols[0].lookup(generate_node_id(BIT_LENGTH, rng))
        assert result.failures == 0
        assert lookup_virtual_latency(result) == result.rounds * LOOKUP_RTT


class TestLogarithmicScaling:
    @pytest.mark.parametrize(
        "size,lookups",
        [(10, 40), (50, 40), (200, 30), (2000, 15)],
    )
    def test_mean_latency_within_log_bound(self, size, lookups):
        mean = mean_lookup_latency(size, lookups, seed=size)
        bound = SLACK * math.log2(size) * LOOKUP_RTT
        assert mean <= bound, (
            f"N={size}: mean lookup latency {mean:.2f} RTT exceeds "
            f"O(log N) bound {bound:.2f} RTT"
        )

    def test_growth_is_sublinear(self):
        # 20x the nodes may cost at most ~double the latency — far below
        # the 20x a linear search would pay, and comfortably above the
        # log2(2000)/log2(100) ~ 1.65 ratio an ideal Kademlia shows.
        small = mean_lookup_latency(100, 30, seed=101)
        large = mean_lookup_latency(2000, 15, seed=102)
        assert large <= small * 2.0, (
            f"latency grew from {small:.2f} to {large:.2f} RTT "
            "(more than 2x for 20x nodes — not logarithmic)"
        )


class TestObsIntegration:
    def test_lookup_latency_lands_in_registry_histogram(self):
        obs.disable()
        try:
            registry = obs.enable()
            rng = random.Random(11)
            protocols = build_network(20, rng)
            before = registry.histogram("kademlia.lookup.virtual_latency")
            observed_before = before.count if before is not None else 0
            result = protocols[0].lookup(generate_node_id(BIT_LENGTH, rng))
            histogram = registry.histogram("kademlia.lookup.virtual_latency")
            assert histogram is not None
            assert histogram.count == observed_before + 1
            assert histogram.max >= lookup_virtual_latency(result)
            assert registry.counter("kademlia.lookups") >= 1
        finally:
            obs.disable()
