"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.snapshot import RoutingTableSnapshot


@pytest.fixture
def snapshot_file(tmp_path):
    snapshot = RoutingTableSnapshot.capture(
        12.0, {1: [2, 3], 2: [1, 3], 3: [1, 2]}
    )
    path = tmp_path / "snapshot.json"
    snapshot.save(path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E"])
        assert args.scenario_positional == "E"
        assert args.profile == "bench"
        assert args.seed == 42
        assert args.jobs == 1
        assert args.flow_jobs == 1
        assert args.cache_dir is None

    def test_flow_jobs_parsed(self):
        args = build_parser().parse_args(["run", "E", "--flow-jobs", "4"])
        assert args.flow_jobs == 4
        args = build_parser().parse_args(
            ["analyze-snapshot", "snap.json", "--flow-jobs", "2",
             "--algorithm", "push_relabel"]
        )
        assert args.flow_jobs == 2
        assert args.algorithm == "push_relabel"

    def test_scenario_option_form(self):
        args = build_parser().parse_args(["sweep-k", "--scenario", "A", "--jobs", "4"])
        assert args.scenario_option == "A"
        assert args.scenario_positional is None
        assert args.jobs == 4

    def test_cache_subcommand_parsed(self):
        args = build_parser().parse_args(["cache", "info", "--cache-dir", "/tmp/c"])
        assert args.cache_command == "info"
        assert args.cache_dir == "/tmp/c"

    def test_overrides_parsed(self):
        args = build_parser().parse_args(
            ["run", "E", "--bucket-size", "5", "--alpha", "5", "--loss", "high",
             "--staleness", "5", "--profile", "tiny"]
        )
        assert args.bucket_size == 5
        assert args.alpha == 5
        assert args.loss == "high"
        assert args.staleness == 5


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "high" in output
        assert "29.3" in output

    def test_run_tiny_scenario(self, capsys):
        exit_code = main(["run", "E", "--profile", "tiny", "--bucket-size", "5",
                          "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "churn_mean_min" in output
        assert "Network size" in output

    def test_run_requires_scenario(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--profile", "tiny"])
        assert "scenario is required" in capsys.readouterr().err

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        info_output = capsys.readouterr().out
        assert "entries:         0" in info_output
        assert "evictions:       0" in info_output
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 0 cache entries" in capsys.readouterr().out

    def test_cache_prune(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        entry = cache_dir / ("a" * 64 + ".json")
        entry.write_text("{}", encoding="utf-8")
        assert main(["cache", "prune", "--cache-dir", str(cache_dir),
                     "--max-bytes", "0"]) == 0
        assert "evicted 1 least-recently-used entries" in capsys.readouterr().out
        assert not entry.exists()
        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "evictions:       1" in capsys.readouterr().out

    def test_analyze_snapshot_flow_jobs(self, snapshot_file, capsys):
        assert main(["analyze-snapshot", str(snapshot_file),
                     "--flow-jobs", "2"]) == 0
        assert "minimum connectivity: 2" in capsys.readouterr().out

    def test_analyze_snapshot(self, snapshot_file, capsys):
        assert main(["analyze-snapshot", str(snapshot_file)]) == 0
        output = capsys.readouterr().out
        assert "minimum connectivity: 2" in output
        assert "resilience r:         1" in output

    def test_analyze_snapshot_exact(self, snapshot_file, capsys):
        assert main(["analyze-snapshot", str(snapshot_file), "--exact"]) == 0
        assert "minimum connectivity: 2" in capsys.readouterr().out

    def test_export_dimacs(self, snapshot_file, tmp_path, capsys):
        output_path = tmp_path / "graph.dimacs"
        assert main(["export-dimacs", str(snapshot_file), str(output_path)]) == 0
        content = output_path.read_text()
        # 3 nodes -> 6 transformed vertices; 6 edges + 3 internal = 9 arcs.
        assert "p max 6 9" in content
        assert "wrote 6 vertices" in capsys.readouterr().out


class TestEstimationOptions:
    @pytest.fixture
    def big_snapshot_file(self, tmp_path):
        from repro.experiments.snapshot import synthetic_snapshot

        snapshot = synthetic_snapshot(80, contacts_per_node=8, seed=5)
        path = tmp_path / "big_snapshot.json"
        snapshot.save(path)
        return path

    def test_connectivity_flags_parsed(self):
        args = build_parser().parse_args(
            ["run", "E", "--connectivity", "estimate",
             "--sample-pairs", "128", "--ci-level", "0.9"]
        )
        assert args.connectivity == "estimate"
        assert args.sample_pairs == 128
        assert args.ci_level == 0.9

    def test_connectivity_defaults_to_exact(self):
        args = build_parser().parse_args(["run", "E"])
        assert args.connectivity == "exact"
        assert args.sample_pairs is None
        assert args.ci_level is None

    def test_sampling_flags_require_estimate_mode(self):
        with pytest.raises(SystemExit):
            main(["run", "A", "--profile", "tiny", "--sample-pairs", "64"])
        with pytest.raises(SystemExit):
            main(["run", "A", "--profile", "tiny", "--ci-level", "0.9"])

    def test_ci_level_range_validated(self):
        with pytest.raises(SystemExit):
            main(["run", "A", "--profile", "tiny",
                  "--connectivity", "estimate", "--ci-level", "1.5"])

    def test_analyze_snapshot_estimate(self, big_snapshot_file, capsys):
        assert main(
            ["analyze-snapshot", str(big_snapshot_file),
             "--connectivity", "estimate", "--sample-pairs", "64"]
        ) == 0
        output = capsys.readouterr().out
        assert "minimum connectivity:" in output
        assert "95% CI of average:" in output
        assert "pairs sampled:        64" in output

    def test_analyze_snapshot_estimate_excludes_exact_flag(self, big_snapshot_file):
        with pytest.raises(SystemExit):
            main(["analyze-snapshot", str(big_snapshot_file),
                  "--connectivity", "estimate", "--exact"])

    def test_analyze_snapshot_sampling_flags_require_estimate(self, big_snapshot_file):
        with pytest.raises(SystemExit):
            main(["analyze-snapshot", str(big_snapshot_file),
                  "--sample-pairs", "64"])

    def test_run_estimate_mode_end_to_end(self, capsys):
        assert main(
            ["run", "A", "--profile", "tiny",
             "--connectivity", "estimate", "--sample-pairs", "32"]
        ) == 0
        assert "stabilized_min" in capsys.readouterr().out
