"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentRunner
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bidirectional_cycle,
    circulant_graph,
    complete_graph,
    figure1_example_graph,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random stream for tests."""
    return random.Random(12345)


@pytest.fixture
def diamond_graph() -> DiGraph:
    """A 4-vertex diamond: two vertex-disjoint paths from ``s`` to ``t``."""
    graph = DiGraph()
    for edge in [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]:
        graph.add_edge(*edge)
    return graph


@pytest.fixture
def figure1_graph() -> DiGraph:
    """The paper's Figure 1 example (max flow 3, vertex connectivity 1)."""
    return figure1_example_graph()


@pytest.fixture
def k4() -> DiGraph:
    """The complete directed graph on 4 vertices."""
    return complete_graph(4)


@pytest.fixture
def ring10() -> DiGraph:
    """A bidirectional 10-cycle (vertex connectivity 2)."""
    return bidirectional_cycle(10)


@pytest.fixture
def circulant12() -> DiGraph:
    """Circulant graph C_12(1, 2): vertex connectivity 4."""
    return circulant_graph(12, [1, 2])


@pytest.fixture
def tiny_runner() -> ExperimentRunner:
    """An experiment runner on the test-sized profile."""
    return ExperimentRunner(profile=get_profile("tiny"), seed=7)
