"""Tests for the traffic model and the bootstrap procedure."""

import random

import pytest

from repro.churn.bootstrap import BootstrapSchedule, RandomBootstrapPolicy
from repro.churn.traffic import DISSEMINATE, LOOKUP, TrafficModel
from repro.simulator.network import Network
from repro.simulator.node import SimNode


class TestTrafficModel:
    def test_paper_default_rates(self):
        model = TrafficModel.paper_default()
        assert model.enabled
        assert model.lookups_per_node_per_minute == 10.0
        assert model.disseminations_per_node_per_minute == 1.0

    def test_disabled_model_produces_no_actions(self):
        model = TrafficModel.disabled()
        assert model.minute_actions(5.0, random.Random(0)) == []

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            TrafficModel(lookups_per_node_per_minute=-1)
        with pytest.raises(ValueError):
            TrafficModel(disseminations_per_node_per_minute=-1)

    def test_integer_rates_exact_counts(self):
        model = TrafficModel(lookups_per_node_per_minute=3,
                             disseminations_per_node_per_minute=1)
        actions = model.minute_actions(0.0, random.Random(0))
        kinds = [kind for _, kind in actions]
        assert kinds.count(LOOKUP) == 3
        assert kinds.count(DISSEMINATE) == 1

    def test_actions_sorted_and_in_window(self):
        model = TrafficModel(lookups_per_node_per_minute=5)
        actions = model.minute_actions(30.0, random.Random(3))
        times = [time for time, _ in actions]
        assert times == sorted(times)
        assert all(30.0 <= t < 31.0 for t in times)

    def test_fractional_rate_expected_count(self):
        """A rate of 0.5 produces the action in roughly half of the minutes."""
        model = TrafficModel(lookups_per_node_per_minute=0.5,
                             disseminations_per_node_per_minute=0.0)
        rng = random.Random(11)
        total = sum(len(model.minute_actions(float(m), rng)) for m in range(2000))
        assert total == pytest.approx(1000, rel=0.1)


class TestBootstrap:
    def test_uniform_schedule_properties(self):
        rng = random.Random(0)
        schedule = BootstrapSchedule.uniform(100, 30.0, rng)
        assert len(schedule) == 100
        assert schedule.join_times == sorted(schedule.join_times)
        assert all(0.0 <= t < 30.0 for t in schedule.join_times)

    def test_uniform_schedule_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            BootstrapSchedule.uniform(0, 30.0, rng)
        with pytest.raises(ValueError):
            BootstrapSchedule.uniform(5, 0.0, rng)

    def test_random_policy_returns_none_for_first_node(self):
        policy = RandomBootstrapPolicy(random.Random(0))
        assert policy.select(Network(), joining_id=1) is None

    def test_random_policy_excludes_joining_node(self):
        network = Network()
        network.add_node(SimNode(1))
        policy = RandomBootstrapPolicy(random.Random(0))
        assert policy.select(network, joining_id=1) is None
        network.add_node(SimNode(2))
        for _ in range(10):
            assert policy.select(network, joining_id=2) == 1

    def test_random_policy_only_alive_nodes(self):
        network = Network()
        network.add_node(SimNode(1))
        network.add_node(SimNode(2))
        network.remove_node(1, time=0.0)
        policy = RandomBootstrapPolicy(random.Random(0))
        for _ in range(10):
            assert policy.select(network, joining_id=3) == 2
