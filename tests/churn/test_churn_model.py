"""Tests for the churn scenarios."""

import random

import pytest

from repro.churn.churn_model import (
    CHURN_SCENARIOS,
    JOIN,
    LEAVE,
    ChurnScenario,
    get_churn_scenario,
)


class TestChurnScenario:
    def test_registry_contains_paper_scenarios(self):
        assert set(CHURN_SCENARIOS) == {"none", "0/1", "1/1", "10/10"}
        assert CHURN_SCENARIOS["10/10"].joins_per_minute == 10
        assert CHURN_SCENARIOS["0/1"].joins_per_minute == 0
        assert CHURN_SCENARIOS["0/1"].leaves_per_minute == 1

    def test_is_active(self):
        assert not CHURN_SCENARIOS["none"].is_active
        assert CHURN_SCENARIOS["1/1"].is_active

    def test_parse(self):
        scenario = ChurnScenario.parse("3/7")
        assert scenario.joins_per_minute == 3
        assert scenario.leaves_per_minute == 7
        with pytest.raises(ValueError):
            ChurnScenario.parse("3-7")

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            ChurnScenario("bad", -1, 0)

    def test_get_churn_scenario_falls_back_to_parse(self):
        assert get_churn_scenario("1/1") is CHURN_SCENARIOS["1/1"]
        assert get_churn_scenario("2/5").leaves_per_minute == 5

    def test_minute_actions_counts(self):
        rng = random.Random(0)
        actions = CHURN_SCENARIOS["10/10"].minute_actions(120.0, rng)
        kinds = [kind for _, kind in actions]
        assert kinds.count(JOIN) == 10
        assert kinds.count(LEAVE) == 10

    def test_minute_actions_within_window_and_sorted(self):
        rng = random.Random(1)
        actions = CHURN_SCENARIOS["10/10"].minute_actions(50.0, rng)
        times = [time for time, _ in actions]
        assert all(50.0 <= t < 51.0 for t in times)
        assert times == sorted(times)

    def test_no_churn_produces_no_actions(self):
        assert CHURN_SCENARIOS["none"].minute_actions(0.0, random.Random(0)) == []
