"""Tests for the message-loss scenarios (paper Table 1)."""

import pytest

from repro.churn.loss import LOSS_SCENARIOS, MessageLossModel, get_loss_model


class TestLossScenarios:
    def test_table1_one_way_values(self):
        assert LOSS_SCENARIOS["none"].one_way_probability == 0.0
        assert LOSS_SCENARIOS["low"].one_way_probability == pytest.approx(0.025)
        assert LOSS_SCENARIOS["medium"].one_way_probability == pytest.approx(0.134)
        assert LOSS_SCENARIOS["high"].one_way_probability == pytest.approx(0.293)

    def test_table1_two_way_values(self):
        """The derived two-way probabilities match Table 1 (5 %, 25 %, 50 %)."""
        assert LOSS_SCENARIOS["none"].two_way_probability == 0.0
        assert LOSS_SCENARIOS["low"].two_way_probability == pytest.approx(0.05, abs=0.002)
        assert LOSS_SCENARIOS["medium"].two_way_probability == pytest.approx(0.25, abs=0.002)
        assert LOSS_SCENARIOS["high"].two_way_probability == pytest.approx(0.50, abs=0.002)

    def test_from_two_way_inverse(self):
        model = MessageLossModel.from_two_way("custom", 0.25)
        assert model.two_way_probability == pytest.approx(0.25)
        assert model.one_way_probability == pytest.approx(0.134, abs=0.001)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            MessageLossModel("bad", 1.0)
        with pytest.raises(ValueError):
            MessageLossModel("bad", -0.1)
        with pytest.raises(ValueError):
            MessageLossModel.from_two_way("bad", 1.0)

    def test_get_loss_model(self):
        assert get_loss_model("high").name == "high"
        with pytest.raises(KeyError, match="unknown loss scenario"):
            get_loss_model("extreme")
