"""Tests for the resilience model (paper Equation 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.resilience import (
    ResilienceModel,
    required_bucket_size,
    required_connectivity,
    resilience_of,
)


class TestResilienceFunctions:
    def test_resilience_of_positive_connectivity(self):
        assert resilience_of(5) == 4
        assert resilience_of(1) == 0

    def test_resilience_of_zero_clamped(self):
        assert resilience_of(0) == 0

    def test_resilience_of_negative_rejected(self):
        with pytest.raises(ValueError):
            resilience_of(-1)

    def test_required_connectivity(self):
        assert required_connectivity(0) == 1
        assert required_connectivity(4) == 5
        with pytest.raises(ValueError):
            required_connectivity(-1)

    def test_required_bucket_size_floor_of_ten(self):
        """k > r, but never below the paper's advised minimum of 10."""
        assert required_bucket_size(3) == 10
        assert required_bucket_size(9) == 10
        assert required_bucket_size(15) == 16
        with pytest.raises(ValueError):
            required_bucket_size(-1)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_equation2_consistency(self, kappa):
        """kappa > r = kappa - 1 >= a for any a <= r."""
        r = resilience_of(kappa)
        assert kappa > r
        assert required_connectivity(r) <= kappa


class TestResilienceModel:
    def test_requirements(self):
        model = ResilienceModel(attacker_budget=4)
        assert model.required_resilience == 4
        assert model.required_connectivity == 5
        assert model.recommended_bucket_size == 10

    def test_large_budget_bucket_recommendation(self):
        model = ResilienceModel(attacker_budget=24)
        assert model.recommended_bucket_size == 25

    def test_satisfaction(self):
        model = ResilienceModel(attacker_budget=4)
        assert model.is_satisfied_by(5)
        assert not model.is_satisfied_by(4)
        assert model.margin(7) == 2
        assert model.margin(3) == -2

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ResilienceModel(attacker_budget=-1)
