"""Tests for the sampling-based connectivity estimator."""

import random
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import ConnectivityAnalyzer, ConnectivityReport
from repro.core.estimation import (
    ConnectivityEstimator,
    EstimatedConnectivityReport,
    validate_exact_vs_estimate,
)
from repro.core.vertex_connectivity import connectivity_statistics
from repro.graph.digraph import DiGraph


def bidirectional_cycle(n: int) -> DiGraph:
    """C_n with both edge directions: kappa(s, t) == 2 for every pair."""
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
        graph.add_edge((i + 1) % n, i)
    return graph


def random_strongly_connected(n: int, extra: int, seed: int) -> DiGraph:
    """A directed ring (strongly connected) plus ``extra`` random chords."""
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestConstruction:
    def test_rejects_bad_sample_pairs(self):
        with pytest.raises(ValueError):
            ConnectivityEstimator(sample_pairs=0)

    def test_rejects_bad_ci_level(self):
        with pytest.raises(ValueError):
            ConnectivityEstimator(ci_level=1.0)
        with pytest.raises(ValueError):
            ConnectivityEstimator(ci_level=0.0)

    def test_rejects_bad_strata(self):
        with pytest.raises(ValueError):
            ConnectivityEstimator(strata=0)


class TestDegenerateGraphs:
    def test_empty_graph(self):
        report = ConnectivityEstimator().analyze_graph(DiGraph())
        assert report.minimum_bound == 0
        assert report.average_estimate == 0.0
        assert report.min_is_exact

    def test_single_vertex(self):
        graph = DiGraph()
        graph.add_vertex(1)
        report = ConnectivityEstimator().analyze_graph(graph)
        assert report.minimum_bound == 0
        assert report.min_is_exact

    def test_complete_graph_is_exact(self):
        graph = DiGraph()
        graph.add_vertices(range(5))
        for i in range(5):
            for j in range(5):
                if i != j:
                    graph.add_edge(i, j)
        report = ConnectivityEstimator(sample_pairs=4).analyze_graph(graph)
        assert report.minimum_bound == 4
        assert report.average_estimate == 4.0
        assert report.min_is_exact
        assert report.ci_width == 0.0

    def test_disconnected_graph_minimum_is_zero(self):
        graph = DiGraph()
        graph.add_vertices(range(6))
        for i in range(3):
            graph.add_edge(i, (i + 1) % 3)
        # vertices 3..5 are isolated -> not strongly connected
        report = ConnectivityEstimator(sample_pairs=8).analyze_graph(graph)
        assert report.minimum_bound == 0
        assert report.min_is_exact
        assert not report.strongly_connected


class TestExactRecovery:
    def test_budget_covering_all_pairs_is_exhaustive(self):
        graph = bidirectional_cycle(8)
        total = 8 * 7 - graph.number_of_edges()
        report = ConnectivityEstimator(sample_pairs=total).analyze_graph(graph)
        assert report.pairs_sampled == total
        assert report.min_is_exact
        assert report.minimum_bound == 2
        assert report.average_estimate == pytest.approx(2.0)
        assert report.ci_low == report.ci_high == pytest.approx(2.0)

    def test_exhaustive_matches_exact_pipeline(self):
        graph = random_strongly_connected(10, extra=15, seed=3)
        stats = connectivity_statistics(graph)
        report = ConnectivityEstimator(sample_pairs=10_000).analyze_graph(graph)
        assert report.minimum_bound == stats.minimum
        assert report.average_estimate == pytest.approx(stats.average)
        assert report.min_is_exact


class TestSampledEstimates:
    def test_deterministic_for_fixed_seed(self):
        graph = random_strongly_connected(24, extra=40, seed=9)
        first = ConnectivityEstimator(sample_pairs=32, seed=5).analyze_graph(graph)
        second = ConnectivityEstimator(sample_pairs=32, seed=5).analyze_graph(graph)
        doc_a, doc_b = first.as_dict(), second.as_dict()
        doc_a.pop("elapsed_seconds"), doc_b.pop("elapsed_seconds")
        assert doc_a == doc_b

    def test_different_seeds_may_differ_but_stay_valid(self):
        graph = random_strongly_connected(24, extra=40, seed=9)
        stats = connectivity_statistics(graph)
        for seed in range(4):
            report = ConnectivityEstimator(
                sample_pairs=24, seed=seed
            ).analyze_graph(graph)
            assert report.minimum_bound >= stats.minimum or report.min_is_exact
            assert report.ci_low <= report.average_estimate <= report.ci_high

    def test_ci_width_narrows_with_budget_on_homogeneous_graph(self):
        graph = bidirectional_cycle(16)
        widths = []
        for budget in (8, 16, 32):
            report = ConnectivityEstimator(
                sample_pairs=budget, seed=1
            ).analyze_graph(graph)
            assert report.average_estimate == pytest.approx(2.0)
            widths.append(report.ci_width)
        assert widths[0] > widths[1] > widths[2] > 0.0

    def test_minimum_bound_dominates_exact_minimum(self):
        graph = random_strongly_connected(20, extra=30, seed=17)
        stats = connectivity_statistics(graph)
        report = ConnectivityEstimator(sample_pairs=16, seed=2).analyze_graph(graph)
        assert report.minimum_bound >= stats.minimum

    def test_obs_counters_recorded(self):
        from repro import obs

        graph = bidirectional_cycle(12)
        obs.enable()
        try:
            with obs.run_scope() as registry:
                ConnectivityEstimator(sample_pairs=8, seed=0).analyze_graph(graph)
                snapshot = registry.snapshot()
        finally:
            obs.disable()
        assert snapshot["counters"].get("estimation.runs") == 1
        assert snapshot["counters"].get("estimation.pairs_sampled") == 8


class TestReportSurface:
    def _report(self) -> EstimatedConnectivityReport:
        graph = bidirectional_cycle(12)
        return ConnectivityEstimator(sample_pairs=8, seed=0).analyze_graph(graph)

    def test_protocol_properties(self):
        report = self._report()
        assert report.min_connectivity == report.minimum_bound
        assert report.avg_connectivity == report.average_estimate
        assert report.is_exact is False
        assert report.confidence_interval == (report.ci_low, report.ci_high)

    def test_exact_report_protocol_properties(self):
        graph = bidirectional_cycle(6)
        report = ConnectivityAnalyzer().analyze_graph(graph)
        assert isinstance(report, ConnectivityReport)
        assert report.min_connectivity == report.minimum
        assert report.avg_connectivity == report.average
        assert report.is_exact is True
        assert report.confidence_interval is None

    def test_deprecated_aliases_warn_but_work(self):
        report = self._report()
        with pytest.warns(DeprecationWarning):
            assert report.minimum == report.minimum_bound
        with pytest.warns(DeprecationWarning):
            assert report.average == report.average_estimate
        with pytest.warns(DeprecationWarning):
            assert report.exact is report.min_is_exact

    def test_protocol_properties_do_not_warn(self):
        report = self._report()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report.min_connectivity
            report.avg_connectivity
            report.is_exact
            report.confidence_interval

    def test_as_dict_round_trip(self):
        report = self._report()
        document = report.as_dict()
        assert document["estimated"] is True
        restored = EstimatedConnectivityReport.from_dict(document)
        assert restored == report

    def test_as_dict_leads_with_marker(self):
        assert next(iter(self._report().as_dict())) == "estimated"


class TestValidationHarness:
    def test_validation_passes_on_random_graph(self):
        graph = random_strongly_connected(18, extra=25, seed=4)
        validation = validate_exact_vs_estimate(graph, sample_pairs=24, seed=1)
        assert validation.average_within_ci
        assert validation.minimum_bound_valid

    def test_validation_exact_recovery(self):
        graph = bidirectional_cycle(8)
        validation = validate_exact_vs_estimate(graph, sample_pairs=10_000)
        assert validation.estimate.min_is_exact
        assert validation.exact_average == pytest.approx(
            validation.estimate.average_estimate
        )
        assert validation.average_within_ci
        assert validation.minimum_bound_valid


# ----------------------------------------------------------------------
# Property-based tests (the ISSUE's hypothesis satellite).
@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=20),
    budget=st.integers(min_value=4, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_ci_deterministic_for_fixed_seed(n, budget, seed):
    graph = bidirectional_cycle(n)
    first = ConnectivityEstimator(sample_pairs=budget, seed=seed).analyze_graph(graph)
    second = ConnectivityEstimator(sample_pairs=budget, seed=seed).analyze_graph(graph)
    assert (first.ci_low, first.ci_high) == (second.ci_low, second.ci_high)
    assert first.average_estimate == second.average_estimate
    assert first.minimum_bound == second.minimum_bound


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=12, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_ci_narrows_monotonically_with_budget(n, seed):
    """On a kappa-homogeneous graph the width is a pure function of the
    budget, so doubling the sample must strictly shrink the interval."""
    graph = bidirectional_cycle(n)
    total = n * (n - 1) - graph.number_of_edges()
    budgets = [b for b in (4, 8, 16, 32) if b < total]
    widths = [
        ConnectivityEstimator(sample_pairs=b, seed=seed).analyze_graph(graph).ci_width
        for b in budgets
    ]
    assert all(earlier > later for earlier, later in zip(widths, widths[1:]))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    extra=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_exact_mode_recovered_when_budget_covers_all_pairs(n, extra, seed):
    graph = random_strongly_connected(n, extra=extra, seed=seed)
    stats = connectivity_statistics(graph)
    report = ConnectivityEstimator(
        sample_pairs=n * n, seed=seed
    ).analyze_graph(graph)
    assert report.min_is_exact
    assert report.minimum_bound == stats.minimum
    assert report.average_estimate == pytest.approx(stats.average)
    assert report.ci_width == 0.0
