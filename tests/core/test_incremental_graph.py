"""The incrementally maintained snapshot graph must equal the fresh build."""

import dataclasses

import pytest

from repro.core.analyzer import ConnectivityAnalyzer
from repro.core.connectivity_graph import build_connectivity_graph
from repro.core.incremental import IncrementalGraphMaintainer
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.kademlia.protocol import KademliaProtocol


def fresh_graph(network):
    # The protocol-level snapshot view — extension protocols may merge
    # state beyond the routing table into it (supplemental links).
    tables = {
        node.node_id: node.protocol("kademlia").routing_table_snapshot()
        for node in network.alive_nodes()
    }
    return build_connectivity_graph(tables)


def assert_graphs_equal(maintained, fresh):
    # Vertex order matters (degree-ranked source selection breaks ties by
    # it); per-row edge *content* matters, per-row order does not (no
    # statistic observes it — max-flow values are exact for any arc order).
    assert maintained.vertices() == fresh.vertices()
    for vertex in fresh.vertices():
        assert set(maintained._succ[vertex]) == set(fresh._succ[vertex]), vertex
        assert set(maintained._pred[vertex]) == set(fresh._pred[vertex]), vertex


def build_simulation(
    scenario_name="E", profile="tiny", seed=7, hardening=None, bucket_size=None
):
    runner = ExperimentRunner(profile=profile, seed=seed)
    scenario = get_scenario(scenario_name)
    if bucket_size is not None:
        scenario = dataclasses.replace(scenario, bucket_size=bucket_size)
    simulation = runner.build_simulation(scenario, hardening=hardening)
    phases = runner.phase_schedule(scenario)
    size = runner.profile.network_size(scenario.size_class)
    simulation.schedule_setup(size, runner.profile.setup_minutes)
    simulation.schedule_traffic(1.0, phases.simulation_end)
    simulation.schedule_churn(phases.stabilization_end, phases.simulation_end)
    return simulation, phases


class TestIncrementalEqualsFresh:
    @pytest.mark.parametrize("scenario_name", ["A", "E", "K"])
    def test_equal_at_every_step(self, scenario_name):
        simulation, phases = build_simulation(scenario_name)
        step = max(phases.simulation_end / 12.0, 1.0)
        t = step
        while t <= phases.simulation_end:
            simulation.run_until(t)
            maintained = simulation.connectivity_graph()
            assert_graphs_equal(maintained, fresh_graph(simulation.network))
            t += step

    def test_equal_with_supplemental_links_protocol(self):
        # The supplemental-links extension merges its overflow list into
        # routing_table_snapshot(); the maintained graph must reflect it
        # (this is the regression that made the hardening ablation's
        # extra-links rows lose their supplemental edges).
        from repro.extensions.hardening import HardeningConfig

        hardening = HardeningConfig(supplemental_links=6)
        simulation, phases = build_simulation(
            "E", hardening=hardening, bucket_size=4
        )
        step = max(phases.simulation_end / 8.0, 1.0)
        t = step
        supplemental_seen = 0
        while t <= phases.simulation_end:
            simulation.run_until(t)
            maintained = simulation.connectivity_graph()
            assert_graphs_equal(maintained, fresh_graph(simulation.network))
            for node in simulation.network.alive_nodes():
                supplemental_seen += len(node.protocol("kademlia")._supplemental)
            t += step
        assert supplemental_seen > 0, "scenario never exercised supplemental links"

    def test_reports_identical_to_snapshot_analysis(self):
        simulation, phases = build_simulation("E")
        simulation.run_until(phases.simulation_end)
        maintained = simulation.connectivity_graph()
        tables = {
            node.node_id: node.protocol(
                KademliaProtocol.protocol_name
            ).routing_table_snapshot()
            for node in simulation.network.alive_nodes()
        }
        inc_report = ConnectivityAnalyzer(seed=0).analyze_graph(maintained)
        fresh_report = ConnectivityAnalyzer(seed=0).analyze_snapshot(tables)
        a, b = inc_report.as_dict(), fresh_report.as_dict()
        a.pop("elapsed_seconds")
        b.pop("elapsed_seconds")
        assert a == b


class TestIncrementality:
    def test_unchanged_tables_are_not_rebuilt(self):
        simulation, phases = build_simulation("E")
        simulation.run_until(phases.stabilization_end)
        maintainer = simulation.graph_maintainer
        simulation.connectivity_graph()
        before = maintainer.rows_rebuilt
        # No simulated time passes: nothing changed, no row rebuilds.
        simulation.connectivity_graph()
        assert maintainer.rows_rebuilt == before
        assert maintainer.refreshes >= 2

    def test_partial_rebuild_after_local_change(self):
        simulation, phases = build_simulation("E")
        simulation.run_until(phases.stabilization_end)
        simulation.connectivity_graph()  # refresh the maintained graph
        maintainer = simulation.graph_maintainer
        alive = simulation.network.alive_nodes()
        # Mutate one node's table membership directly.
        protocol = alive[0].protocol("kademlia")
        victim = protocol.routing_table.contact_ids()[0]
        protocol.routing_table.remove_contact(victim)
        before = maintainer.rows_rebuilt
        refreshed = simulation.connectivity_graph()
        assert maintainer.rows_rebuilt == before + 1
        assert_graphs_equal(refreshed, fresh_graph(simulation.network))

    def test_departed_vertex_disappears_with_incident_edges(self):
        simulation, phases = build_simulation("E")
        simulation.run_until(phases.stabilization_end)
        simulation.connectivity_graph()
        departed = simulation.remove_random_node()
        assert departed is not None
        refreshed = simulation.connectivity_graph()
        assert departed not in refreshed
        assert_graphs_equal(refreshed, fresh_graph(simulation.network))


class TestMaintainerStandalone:
    def test_empty_network(self):
        maintainer = IncrementalGraphMaintainer()

        class _EmptyNetwork:
            def alive_nodes(self):
                return []

        graph = maintainer.refresh(_EmptyNetwork())
        assert graph.number_of_vertices() == 0
