"""Tests for pairwise and global vertex connectivity."""

import random

import pytest

from repro.core.vertex_connectivity import (
    PairFlowEvaluator,
    connectivity_statistics,
    global_vertex_connectivity,
    lowest_in_degree_vertices,
    lowest_out_degree_vertices,
    pairwise_vertex_connectivity,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_graph,
    directed_cycle,
    figure1_example_graph,
)

ALGORITHMS = ("dinic", "push_relabel", "edmonds_karp")


class TestPairwiseConnectivity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_figure1_kappa_is_one(self, algorithm):
        """Paper Figure 1: kappa(a, i) = 1 although the edge max flow is 3."""
        graph = figure1_example_graph()
        assert pairwise_vertex_connectivity(graph, "a", "i", algorithm=algorithm) == 1

    def test_bidirectional_cycle_kappa_two(self, ring10):
        assert pairwise_vertex_connectivity(ring10, 0, 5) == 2

    def test_circulant_kappa_four(self, circulant12):
        assert pairwise_vertex_connectivity(circulant12, 0, 6) == 4

    def test_unreachable_pair_is_zero(self):
        graph = DiGraph.from_edges([(1, 2), (3, 4)])
        assert pairwise_vertex_connectivity(graph, 1, 4) == 0

    def test_adjacent_pair_rejected(self, ring10):
        with pytest.raises(ValueError, match="adjacent"):
            pairwise_vertex_connectivity(ring10, 0, 1)

    def test_identical_pair_rejected(self, ring10):
        with pytest.raises(ValueError, match="distinct"):
            pairwise_vertex_connectivity(ring10, 0, 0)

    def test_unknown_algorithm(self, ring10):
        with pytest.raises(ValueError, match="unknown algorithm"):
            pairwise_vertex_connectivity(ring10, 0, 5, algorithm="nope")


class TestGlobalConnectivity:
    def test_directed_cycle_is_one(self):
        assert global_vertex_connectivity(directed_cycle(7)) == 1

    def test_bidirectional_cycle_is_two(self, ring10):
        assert global_vertex_connectivity(ring10) == 2

    def test_circulant_is_four(self, circulant12):
        assert global_vertex_connectivity(circulant12) == 4

    def test_complete_graph_is_n_minus_one(self):
        assert global_vertex_connectivity(complete_graph(6)) == 5

    def test_graph_with_cut_vertex_is_one(self):
        """Two triangles joined at a single shared vertex have kappa = 1."""
        graph = DiGraph()
        for a, b in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]:
            graph.add_edge(a, b)
            graph.add_edge(b, a)
        assert global_vertex_connectivity(graph) == 1

    def test_disconnected_graph_is_zero(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1), (3, 4), (4, 3)])
        assert global_vertex_connectivity(graph) == 0

    def test_isolated_vertex_forces_zero(self, circulant12):
        circulant12.add_vertex(99)
        assert global_vertex_connectivity(circulant12) == 0

    def test_single_vertex_and_empty(self):
        assert global_vertex_connectivity(DiGraph()) == 0
        lone = DiGraph()
        lone.add_vertex(1)
        assert global_vertex_connectivity(lone) == 0

    def test_sampling_matches_exact_on_structured_graphs(self, circulant12, ring10):
        for graph, expected in ((circulant12, 4), (ring10, 2)):
            sampled = global_vertex_connectivity(
                graph, sample_fraction=0.25, rng=random.Random(0)
            )
            assert sampled == expected


class TestConnectivityStatistics:
    def test_average_at_least_minimum(self, circulant12):
        stats = connectivity_statistics(circulant12)
        assert stats.minimum == 4
        assert stats.average >= stats.minimum
        assert stats.exact
        assert stats.pairs_evaluated > 0

    def test_complete_graph_fast_path(self):
        stats = connectivity_statistics(complete_graph(5))
        assert stats.minimum == 4 and stats.average == 4.0
        assert stats.pairs_evaluated == 0

    def test_zero_out_degree_vertex(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        graph.add_vertex(3)  # never added to anyone's table
        stats = connectivity_statistics(graph)
        assert stats.minimum == 0

    def test_invalid_sample_fraction(self, ring10):
        with pytest.raises(ValueError):
            connectivity_statistics(ring10, sample_fraction=-0.5)

    def test_cutoff_mode_preserves_minimum(self, circulant12):
        exact = connectivity_statistics(circulant12)
        capped = connectivity_statistics(circulant12, use_cutoff=True)
        assert capped.minimum == exact.minimum

    def test_min_pair_reported(self, figure1_graph):
        stats = connectivity_statistics(figure1_graph)
        assert stats.minimum == 0
        assert stats.min_pair is not None


class TestPairFlowEvaluator:
    def test_kappa_matches_pairwise_function(self, circulant12):
        evaluator = PairFlowEvaluator(circulant12)
        assert evaluator.kappa(0, 6) == pairwise_vertex_connectivity(circulant12, 0, 6)

    def test_kappa_rejects_adjacent_and_identical(self, circulant12):
        evaluator = PairFlowEvaluator(circulant12)
        with pytest.raises(ValueError):
            evaluator.kappa(0, 1)
        with pytest.raises(ValueError):
            evaluator.kappa(0, 0)

    def test_minimum_over_full_vertex_set_is_exact(self, ring10):
        evaluator = PairFlowEvaluator(ring10)
        vertices = ring10.vertices()
        minimum, pairs = evaluator.minimum_over(vertices, vertices, use_cutoff=True)
        assert minimum == 2
        assert pairs > 0

    def test_minimum_over_detects_zero_out_degree(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        graph.add_vertex(3)
        evaluator = PairFlowEvaluator(graph)
        minimum, _ = evaluator.minimum_over([3], [1, 2, 3])
        assert minimum == 0

    def test_average_over_random_pairs(self, circulant12):
        evaluator = PairFlowEvaluator(circulant12)
        average, evaluated = evaluator.average_over_random_pairs(20, random.Random(0))
        assert evaluated == 20
        assert average >= 4.0

    def test_average_over_complete_graph_has_no_pairs(self):
        evaluator = PairFlowEvaluator(complete_graph(4))
        average, evaluated = evaluator.average_over_random_pairs(10, random.Random(0))
        assert evaluated == 0
        assert average == 0.0

    def test_degree_helpers(self, figure1_graph):
        assert lowest_out_degree_vertices(figure1_graph, 1) == ["i"]
        assert lowest_in_degree_vertices(figure1_graph, 1) == ["a"]
