"""Tests for the connectivity analyzer and time-series aggregation."""

import pytest

from repro.core.analyzer import ConnectivityAnalyzer, ConnectivityReport
from repro.core.timeseries import ConnectivitySample, ConnectivityTimeSeries
from repro.graph.digraph import DiGraph
from repro.graph.generators import circulant_graph, complete_graph


def make_report(minimum=3, average=5.0, vertex_count=10):
    return ConnectivityReport(
        minimum=minimum, average=average, resilience=max(minimum - 1, 0),
        vertex_count=vertex_count, edge_count=vertex_count * 2,
        disconnected_count=0, strongly_connected=minimum > 0,
        symmetry_ratio=1.0, min_pairs_evaluated=4, avg_pairs_evaluated=4,
        exact=False, elapsed_seconds=0.01,
    )


class TestConnectivityAnalyzer:
    def test_exact_mode_matches_known_connectivity(self):
        analyzer = ConnectivityAnalyzer(source_fraction=None)
        report = analyzer.analyze_graph(circulant_graph(10, [1, 2]))
        assert report.minimum == 4
        assert report.average >= 4
        assert report.exact
        assert report.resilience == 3

    def test_sampled_mode_on_structured_graph(self):
        analyzer = ConnectivityAnalyzer(source_fraction=0.3, target_fraction=0.3,
                                        average_pairs=16, seed=1)
        report = analyzer.analyze_graph(circulant_graph(12, [1, 2]))
        assert report.minimum == 4
        assert report.average >= 4
        assert not report.exact

    def test_not_strongly_connected_short_circuits_to_zero(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1), (3, 4), (4, 3)])
        analyzer = ConnectivityAnalyzer()
        report = analyzer.analyze_graph(graph)
        assert report.minimum == 0
        assert report.min_pairs_evaluated == 0
        assert not report.strongly_connected

    def test_empty_and_singleton_graphs(self):
        analyzer = ConnectivityAnalyzer()
        assert analyzer.analyze_graph(DiGraph()).minimum == 0
        lone = DiGraph()
        lone.add_vertex(1)
        report = analyzer.analyze_graph(lone)
        assert report.minimum == 0 and report.vertex_count == 1

    def test_complete_graph_fast_path(self):
        analyzer = ConnectivityAnalyzer()
        report = analyzer.analyze_graph(complete_graph(5))
        assert report.minimum == 4
        assert report.average == 4.0

    def test_disconnected_count_reported(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        graph.add_vertex(3)
        report = ConnectivityAnalyzer().analyze_graph(graph)
        assert report.disconnected_count == 1
        assert report.minimum == 0

    def test_analyze_snapshot_from_tables(self):
        tables = {1: [2, 3], 2: [1, 3], 3: [1, 2]}
        report = ConnectivityAnalyzer().analyze_snapshot(tables)
        assert report.minimum == 2
        assert report.vertex_count == 3

    def test_average_pass_disabled(self):
        analyzer = ConnectivityAnalyzer(average_pairs=0)
        report = analyzer.analyze_graph(circulant_graph(10, [1, 2]))
        assert report.average == float(report.minimum)
        assert report.avg_pairs_evaluated == 0

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            ConnectivityAnalyzer(source_fraction=0.0)
        with pytest.raises(ValueError):
            ConnectivityAnalyzer(target_fraction=0.0)

    def test_report_as_dict(self):
        report = ConnectivityAnalyzer().analyze_graph(complete_graph(4))
        data = report.as_dict()
        assert data["minimum"] == 3
        assert data["resilience"] == 2
        assert "elapsed_seconds" in data


class TestConnectivityTimeSeries:
    def test_append_requires_time_order(self):
        series = ConnectivityTimeSeries(label="test")
        series.append(ConnectivitySample(time=1.0, network_size=5, report=make_report()))
        with pytest.raises(ValueError):
            series.append(ConnectivitySample(time=0.5, network_size=5, report=make_report()))

    def test_series_extraction(self):
        series = ConnectivityTimeSeries(label="test")
        for t, minimum in [(1.0, 2), (2.0, 4), (3.0, 6)]:
            series.append(ConnectivitySample(
                time=t, network_size=10, report=make_report(minimum=minimum,
                                                            average=minimum + 1.0)))
        assert series.times() == [1.0, 2.0, 3.0]
        assert series.minimum_series() == [2, 4, 6]
        assert series.average_series() == [3.0, 5.0, 7.0]
        assert series.network_size_series() == [10, 10, 10]
        assert len(series) == 3
        assert series.final_sample().minimum == 6

    def test_window_and_aggregates(self):
        series = ConnectivityTimeSeries(label="test")
        for t, minimum in [(1.0, 2), (2.0, 4), (3.0, 6), (4.0, 8)]:
            series.append(ConnectivitySample(
                time=t, network_size=10, report=make_report(minimum=minimum)))
        window = series.window(2.0, 4.0)
        assert window.times() == [2.0, 3.0]
        assert series.mean_minimum(2.0) == pytest.approx((4 + 6 + 8) / 3)
        assert series.mean_minimum(10.0) == 0.0

    def test_relative_variance(self):
        series = ConnectivityTimeSeries(label="test")
        for t, minimum in [(1.0, 10), (2.0, 10), (3.0, 10)]:
            series.append(ConnectivitySample(
                time=t, network_size=10, report=make_report(minimum=minimum)))
        assert series.relative_variance_minimum() == 0.0

    def test_to_rows(self):
        series = ConnectivityTimeSeries(label="test")
        series.append(ConnectivitySample(time=1.0, network_size=7, report=make_report()))
        rows = series.to_rows()
        assert rows == [{"time": 1.0, "min": 3, "avg": 5.0, "network_size": 7}]
