"""Tests for connectivity-graph construction."""

from repro.core.connectivity_graph import (
    build_connectivity_graph,
    connectivity_graph_from_protocols,
    disconnected_vertices,
)
from repro.kademlia.config import KademliaConfig
from repro.kademlia.protocol import KademliaProtocol


class TestBuildConnectivityGraph:
    def test_vertices_match_alive_nodes(self):
        graph = build_connectivity_graph({1: [2], 2: [1], 3: []})
        assert sorted(graph.vertices()) == [1, 2, 3]
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)
        assert graph.out_degree(3) == 0

    def test_edges_to_departed_nodes_dropped(self):
        """Contacts pointing at nodes outside the alive set are ignored."""
        graph = build_connectivity_graph({1: [2, 99], 2: [1]})
        assert not graph.has_vertex(99)
        assert graph.out_degree(1) == 1

    def test_explicit_alive_set_filters_vertices(self):
        tables = {1: [2, 3], 2: [1], 3: [1]}
        graph = build_connectivity_graph(tables, alive_nodes=[1, 2])
        assert sorted(graph.vertices()) == [1, 2]
        assert not graph.has_edge(1, 3)

    def test_self_references_ignored(self):
        graph = build_connectivity_graph({1: [1, 2], 2: []})
        assert not graph.has_edge(1, 1)
        assert graph.has_edge(1, 2)

    def test_unit_capacities(self):
        graph = build_connectivity_graph({1: [2], 2: [1]})
        assert graph.capacity(1, 2) == 1.0

    def test_empty_snapshot(self):
        graph = build_connectivity_graph({})
        assert graph.number_of_vertices() == 0

    def test_from_protocols(self):
        config = KademliaConfig(bit_length=16, bucket_size=4)
        protocols = [KademliaProtocol(node_id, config) for node_id in (1, 2, 3)]
        protocols[0].routing_table.add_contact(2, 0.0)
        protocols[1].routing_table.add_contact(3, 0.0)
        graph = connectivity_graph_from_protocols(protocols)
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)
        assert graph.number_of_vertices() == 3


class TestDisconnectedVertices:
    def test_detects_sinks_and_sources(self):
        graph = build_connectivity_graph({1: [2], 2: [1], 3: [1], 4: []})
        # 3 has in-degree 0 (nobody lists it); 4 has out-degree 0 and in-degree 0.
        assert set(disconnected_vertices(graph)) == {3, 4}

    def test_none_for_mutual_knowledge(self):
        graph = build_connectivity_graph({1: [2], 2: [1]})
        assert disconnected_vertices(graph) == []
