"""Property-based tests: our vertex connectivity vs a networkx oracle."""

import random

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.vertex_connectivity import (
    connectivity_statistics,
    global_vertex_connectivity,
    pairwise_vertex_connectivity,
)
from repro.graph.digraph import DiGraph


@st.composite
def random_digraphs(draw):
    """Small random digraphs (no self-loops)."""
    n = draw(st.integers(min_value=2, max_value=8))
    density = draw(st.floats(min_value=0.2, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                graph.add_edge(i, j)
    return graph


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(graph.vertices())
    nx_graph.add_edges_from((u, v) for u, v, _ in graph.edges())
    return nx_graph


@settings(max_examples=50, deadline=None)
@given(random_digraphs())
def test_pairwise_connectivity_matches_networkx(graph):
    nx_graph = to_networkx(graph)
    non_adjacent = [
        (v, w) for v in graph.vertices() for w in graph.vertices()
        if v != w and not graph.has_edge(v, w)
    ]
    for v, w in non_adjacent[:10]:
        ours = pairwise_vertex_connectivity(graph, v, w)
        oracle = nx.algorithms.connectivity.local_node_connectivity(nx_graph, v, w)
        assert ours == oracle, (v, w)


@settings(max_examples=40, deadline=None)
@given(random_digraphs())
def test_global_connectivity_matches_networkx(graph):
    """Our kappa(D) equals the paper's Equation 1 evaluated with a networkx oracle.

    The oracle applies the definition directly — the minimum of
    ``local_node_connectivity`` over all ordered non-adjacent pairs, and
    ``n - 1`` for complete graphs — because ``nx.node_connectivity`` uses a
    minimum-degree-neighbourhood shortcut that disagrees with Equation 1 on
    some small directed graphs (e.g. a single one-way edge on two vertices).
    """
    ours = global_vertex_connectivity(graph)
    nx_graph = to_networkx(graph)
    n = graph.number_of_vertices()
    non_adjacent = [
        (v, w) for v in graph.vertices() for w in graph.vertices()
        if v != w and not graph.has_edge(v, w)
    ]
    if not non_adjacent:
        oracle = n - 1
    else:
        oracle = min(
            nx.algorithms.connectivity.local_node_connectivity(nx_graph, v, w)
            for v, w in non_adjacent
        )
    assert ours == oracle


@settings(max_examples=30, deadline=None)
@given(random_digraphs())
def test_connectivity_bounded_by_min_degree(graph):
    """kappa(D) <= min degree unless the graph is complete (then n - 1)."""
    stats = connectivity_statistics(graph)
    n = graph.number_of_vertices()
    if graph.is_complete():
        assert stats.minimum == n - 1
    else:
        assert stats.minimum <= min(graph.min_out_degree(), graph.min_in_degree())


@settings(max_examples=30, deadline=None)
@given(random_digraphs())
def test_statistics_invariants(graph):
    stats = connectivity_statistics(graph)
    assert stats.minimum >= 0
    assert stats.average >= stats.minimum - 1e-9
    assert stats.vertex_count == graph.number_of_vertices()
    assert stats.edge_count == graph.number_of_edges()


@settings(max_examples=25, deadline=None)
@given(random_digraphs(), st.integers(min_value=0, max_value=10_000))
def test_removing_kappa_vertices_cannot_be_survived_by_all_pairs(graph, seed):
    """Sanity check of the resilience interpretation.

    If kappa(D) = k > 0, removing fewer than k vertices keeps the remaining
    graph's vertices mutually reachable (Menger / Equation 2 of the paper).
    """
    kappa = global_vertex_connectivity(graph)
    if kappa <= 1:
        return
    rng = random.Random(seed)
    removable = rng.sample(graph.vertices(), kappa - 1)
    reduced = graph.copy()
    for vertex in removable:
        reduced.remove_vertex(vertex)
    if reduced.number_of_vertices() < 2:
        return
    nx_reduced = to_networkx(reduced)
    assert nx.is_strongly_connected(nx_reduced)
