"""Tests for the structural graph metrics."""

import random

import pytest

from repro.analysis.graph_metrics import (
    DegreeDistribution,
    compute_graph_metrics,
    routing_table_occupancy,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import bidirectional_cycle, complete_graph, directed_cycle


class TestDegreeDistribution:
    def test_summary_values(self):
        dist = DegreeDistribution.from_degrees([1, 2, 3, 4, 5])
        assert dist.minimum == 1
        assert dist.maximum == 5
        assert dist.average == 3.0
        assert dist.median == 3.0

    def test_empty_sequence(self):
        dist = DegreeDistribution.from_degrees([])
        assert dist.minimum == 0 and dist.average == 0.0

    def test_percentiles_ordered(self):
        dist = DegreeDistribution.from_degrees(list(range(100)))
        assert dist.percentile_5 <= dist.median <= dist.percentile_95


class TestGraphMetrics:
    def test_complete_graph(self):
        metrics = compute_graph_metrics(complete_graph(6))
        assert metrics.vertex_count == 6
        assert metrics.edge_count == 30
        assert metrics.in_degrees.minimum == 5
        assert metrics.out_degrees.maximum == 5
        assert metrics.reciprocity == 1.0
        assert metrics.strongly_connected_components == 1
        assert metrics.largest_scc_fraction == 1.0
        assert metrics.estimated_average_path_length == pytest.approx(1.0)

    def test_directed_cycle_path_length(self):
        metrics = compute_graph_metrics(directed_cycle(6))
        # Distances 1..5 from each source, mean 3.
        assert metrics.estimated_average_path_length == pytest.approx(3.0)
        assert metrics.reciprocity == 0.0

    def test_disconnected_graph(self):
        graph = DiGraph.from_edges([(1, 2), (2, 1)])
        graph.add_vertex(3)
        metrics = compute_graph_metrics(graph)
        assert metrics.strongly_connected_components == 2
        assert metrics.largest_scc_fraction == pytest.approx(2 / 3)
        assert metrics.in_degrees.minimum == 0

    def test_empty_graph(self):
        metrics = compute_graph_metrics(DiGraph())
        assert metrics.vertex_count == 0
        assert metrics.estimated_average_path_length is None
        assert metrics.largest_scc_fraction == 0.0

    def test_as_dict_keys(self):
        data = compute_graph_metrics(bidirectional_cycle(5)).as_dict()
        assert data["reciprocity"] == 1.0
        assert data["vertex_count"] == 5
        assert "estimated_average_path_length" in data

    def test_sampled_path_length_reproducible(self):
        graph = complete_graph(30)
        a = compute_graph_metrics(graph, path_length_samples=5, rng=random.Random(1))
        b = compute_graph_metrics(graph, path_length_samples=5, rng=random.Random(1))
        assert a.estimated_average_path_length == b.estimated_average_path_length


class TestRoutingTableOccupancy:
    def test_occupancy(self):
        tables = {1: [2, 3, 4], 2: [1], 3: []}
        stats = routing_table_occupancy(tables, bucket_capacity=2)
        assert stats["nodes"] == 3
        assert stats["mean_contacts"] == pytest.approx(4 / 3)
        assert stats["min_contacts"] == 0
        assert stats["max_contacts"] == 3
        assert stats["mean_buckets_worth"] == pytest.approx(2 / 3)

    def test_empty_tables(self):
        assert routing_table_occupancy({}, bucket_capacity=5)["nodes"] == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            routing_table_occupancy({1: []}, bucket_capacity=0)
