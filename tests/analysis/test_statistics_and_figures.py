"""Tests for statistics helpers and text figure rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.figures import format_table, render_ascii_chart, render_series_table
from repro.analysis.statistics import (
    mean,
    population_variance,
    relative_variance,
    sample_variance,
    standard_deviation,
    summarize,
)


class TestStatistics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5
        with pytest.raises(ValueError):
            mean([])

    def test_population_variance(self):
        assert population_variance([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            population_variance([])

    def test_sample_variance(self):
        assert sample_variance([1, 2, 3]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            sample_variance([1])

    def test_standard_deviation(self):
        assert standard_deviation([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_relative_variance_definition(self):
        """RV = variance / mean (paper Table 2)."""
        values = [1.0, 3.0]
        assert relative_variance(values) == pytest.approx(1.0 / 2.0)

    def test_relative_variance_zero_mean_and_empty(self):
        assert relative_variance([]) == 0.0
        assert relative_variance([0, 0, 0]) == 0.0

    def test_summarize(self):
        summary = summarize([1, 2, 3])
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1 and summary["max"] == 3
        assert summarize([])["count"] == 0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
    def test_relative_variance_non_negative_for_positive_values(self, values):
        assert relative_variance(values) >= 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


class TestFigureRendering:
    def test_render_series_table_alignment(self):
        text = render_series_table([1.0, 2.0], {"Min": [3, 4], "Avg": [5, 6]})
        lines = text.splitlines()
        assert "time (min)" in lines[0]
        assert "Min" in lines[0] and "Avg" in lines[0]
        assert len(lines) == 4

    def test_render_series_table_length_mismatch(self):
        with pytest.raises(ValueError, match="has 1 values for 2 times"):
            render_series_table([1.0, 2.0], {"Min": [3]})

    def test_render_ascii_chart(self):
        chart = render_ascii_chart([1, 2, 3, 4], height=4, label="demo")
        assert chart.splitlines()[0] == "demo"
        assert "█" in chart

    def test_render_ascii_chart_empty_and_invalid(self):
        assert "empty series" in render_ascii_chart([], label="x")
        with pytest.raises(ValueError):
            render_ascii_chart([1], height=0)

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("a")
